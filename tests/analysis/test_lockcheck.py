"""Self-tests for the TSan-lite lockcheck plugin.

This module's stem is *not* in ``INSTRUMENTED_MODULES``, so the plugin does
not auto-activate here; the tests drive the instrumentation directly and
inject the very bugs it exists to catch: a deliberate lock-order inversion
and a guarded-attribute mutation without the lock.
"""

from __future__ import annotations

import threading

import pytest

import lockcheck
from lockcheck import InstrumentedLock, LockOrderViolation, LockRegistry
from repro.core.scheduler import RequestScheduler
from repro.llm.base import GenerationParams, LanguageModel


class EchoModel(LanguageModel):
    name = "echo"
    context_window = 128

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        return f"ans:{prompt}"


@pytest.fixture()
def instrumented():
    """Activate lockcheck for one test, always restoring the real Lock."""
    registry = lockcheck.activate()
    try:
        yield registry
    finally:
        lockcheck.deactivate()


class TestLockOrderGraph:
    def test_deliberate_inversion_is_detected(self):
        registry = LockRegistry()
        a = InstrumentedLock(registry, name="A")
        b = InstrumentedLock(registry, name="B")
        # Establish the order A -> B...
        with a, b:
            pass
        # ...then deliberately invert it.
        with b, a:
            pass
        assert len(registry.violations) == 1
        assert "inversion" in registry.violations[0]
        assert "A" in registry.violations[0] and "B" in registry.violations[0]

    def test_consistent_order_is_clean(self):
        registry = LockRegistry()
        a = InstrumentedLock(registry, name="A")
        b = InstrumentedLock(registry, name="B")
        for _ in range(3):
            with a, b:
                pass
        assert registry.violations == []

    def test_cross_thread_inversion_is_detected(self):
        registry = LockRegistry()
        a = InstrumentedLock(registry, name="A")
        b = InstrumentedLock(registry, name="B")

        def establish() -> None:
            with a, b:
                pass

        worker = threading.Thread(target=establish)
        worker.start()
        worker.join(timeout=5.0)
        with b, a:  # inverted relative to the worker's order
            pass
        assert len(registry.violations) == 1

    def test_reacquire_after_release_is_not_an_edge(self):
        registry = LockRegistry()
        a = InstrumentedLock(registry, name="A")
        b = InstrumentedLock(registry, name="B")
        with a:
            pass
        with b:
            pass
        with b:
            pass
        assert registry.edges == {} and registry.violations == []


class TestActivation:
    def test_activate_patches_and_deactivate_restores(self):
        real_factory = threading.Lock
        registry = lockcheck.activate()
        try:
            patched = threading.Lock()
            assert isinstance(patched, InstrumentedLock)
            with patched:
                assert registry.holds(patched)
            assert not registry.holds(patched)
        finally:
            violations = lockcheck.deactivate()
        assert threading.Lock is real_factory
        assert violations == []
        assert isinstance(threading.Lock(), type(real_factory()))

    def test_double_activation_is_rejected(self):
        lockcheck.activate()
        try:
            with pytest.raises(RuntimeError, match="already active"):
                lockcheck.activate()
        finally:
            lockcheck.deactivate()

    def test_condition_wait_routes_through_the_wrapped_lock(self, instrumented):
        lock = threading.Lock()
        condition = threading.Condition(lock)
        with condition:
            assert instrumented.holds(lock)
            condition.wait(timeout=0.01)  # release/reacquire inside wait
            assert instrumented.holds(lock)
        assert not instrumented.holds(lock)
        assert instrumented.violations == []


class TestGuardedAttributes:
    def test_mutation_without_lock_raises(self, instrumented):
        scheduler = RequestScheduler(model=EchoModel())
        with pytest.raises(LockOrderViolation, match="guarded attribute"):
            scheduler.max_wait = 1.0

    def test_mutation_under_lock_is_allowed(self, instrumented):
        scheduler = RequestScheduler(model=EchoModel())
        with scheduler._lock:
            scheduler.max_wait = 1.0
        assert scheduler.max_wait == 1.0

    def test_configure_is_the_sanctioned_path(self, instrumented):
        scheduler = RequestScheduler(model=EchoModel())
        scheduler.configure(max_wait=0.125, max_batch_size=4)
        assert scheduler.max_wait == 0.125
        assert scheduler.max_batch_size == 4

    def test_unguarded_attributes_stay_writable(self, instrumented):
        scheduler = RequestScheduler(model=EchoModel())
        scheduler.cache_size = 16  # not annotated: no lock required
        assert scheduler.cache_size == 16

    def test_scheduler_still_answers_under_instrumentation(self, instrumented):
        scheduler = RequestScheduler(model=EchoModel())
        future = scheduler.submit("p")
        scheduler._drain_once()
        assert future.result(timeout=5.0) == "ans:p"
        assert instrumented.violations == []

    def test_layout_harvest_matches_scheduler_annotations(self):
        layout = lockcheck._guarded_layout(RequestScheduler)
        assert layout.locks == {"_lock"}
        assert layout.conditions == {"_space": "_lock", "_arrived": "_lock"}
        assert set(layout.guarded) >= {
            "max_batch_size", "max_wait", "queue_depth",
            "_queue", "_inflight", "_cache", "_clones",
        }


class TestWitnessRecording:
    def test_factory_locks_carry_their_creation_site(self, instrumented):
        lock = threading.Lock()
        assert lock.site is not None
        path, line = lock.site
        assert path.endswith("test_lockcheck.py")
        assert line > 0

    def test_edges_record_sites_and_counts(self, instrumented):
        a = threading.Lock()
        b = threading.Lock()
        for _ in range(3):
            with a, b:
                pass
        (edge,) = instrumented.edge_sites
        assert instrumented.edge_sites[edge] == (a.site, b.site)
        assert instrumented.edge_counts[edge] == 3

    def test_deactivate_folds_edges_into_the_witness(self, monkeypatch):
        monkeypatch.setattr(lockcheck, "_WITNESS", {})
        lockcheck.activate()
        try:
            a = threading.Lock()
            b = threading.Lock()
            with a, b:
                pass
        finally:
            lockcheck.deactivate()
        assert lockcheck._WITNESS == {(a.site, b.site): 1}

    def test_siteless_locks_are_dropped_from_the_witness(self, monkeypatch):
        monkeypatch.setattr(lockcheck, "_WITNESS", {})
        registry = lockcheck.activate()
        try:
            anon = InstrumentedLock(registry, name="anon")  # no factory, no site
            named = threading.Lock()
            with anon, named:
                pass
        finally:
            lockcheck.deactivate()
        assert lockcheck._WITNESS == {}

    def test_write_witness_round_trips_through_the_checker(self, tmp_path, monkeypatch):
        site_a = ("/repo/src/repro/core/scheduler.py", 319)
        site_b = ("/repo/src/repro/core/store.py", 135)
        monkeypatch.setattr(lockcheck, "_WITNESS", {(site_a, site_b): 26})
        destination = tmp_path / "reports" / "witness.json"
        lockcheck.write_witness(destination)

        from repro.analysis.interproc.witness import load_witness

        (edge,) = load_witness(destination)
        assert edge.src_site == ("src/repro/core/scheduler.py", 319)
        assert edge.dst_site == ("src/repro/core/store.py", 135)
        assert edge.count == 26

    def test_witness_env_var_extends_instrumentation_scope(self, monkeypatch, tmp_path):
        class FakeItem:
            def __init__(self, name: str) -> None:
                self.path = tmp_path / name

        plugin = lockcheck.LockCheckPlugin()
        monkeypatch.delenv("LOCKCHECK_WITNESS", raising=False)
        assert plugin._applies(FakeItem("test_scheduler.py"))
        assert not plugin._applies(FakeItem("test_endpoints.py"))
        monkeypatch.setenv("LOCKCHECK_WITNESS", str(tmp_path / "w.json"))
        assert plugin._applies(FakeItem("test_endpoints.py"))
        assert not plugin._applies(FakeItem("test_cli.py"))
