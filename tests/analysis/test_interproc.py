"""Tests for the interprocedural concurrency analysis (``--interproc``).

The per-rule smoke checks (each rule flags its fixture) live in
``test_repro_lint.py`` next to the per-file rules; this module pins the
*exact* behavior: finding counts and anchors per fixture, the acquisition
graph built over the real tree, RLock reentrancy, the runtime-witness
cross-check verdicts, and the baseline ratchet.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.base import SourceFile
from repro.analysis.interproc import (
    CallGraph,
    WitnessEdge,
    build_program,
    canonical_path,
    cross_check,
)
from repro.analysis.interproc.witness import parse_witness
from repro.analysis.runner import (
    BASELINE_SCHEMA_VERSION,
    baseline_counts,
    load_baseline,
    new_versus_baseline,
    write_baseline,
)
from repro.analysis.runner import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures" / "interproc"
CORE_FIXTURES = Path(__file__).parent / "fixtures" / "core"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _analyze(name: str):
    return analyze_paths([FIXTURES / name], interproc=True)


def _build(path: str, text: str):
    program = build_program([SourceFile.read(path, text)])
    return program, CallGraph(program)


def _build_fixture(name: str):
    path = FIXTURES / name
    return _build(str(path), path.read_text(encoding="utf-8"))


class TestModel:
    def test_canonical_path_slices_at_known_roots(self):
        assert (
            canonical_path("/abs/checkout/src/repro/core/store.py")
            == "src/repro/core/store.py"
        )
        assert canonical_path("src/repro/cli.py") == "src/repro/cli.py"
        assert (
            canonical_path("/abs/tests/analysis/test_interproc.py")
            == "tests/analysis/test_interproc.py"
        )
        assert canonical_path("elsewhere/module.py") == "elsewhere/module.py"

    def test_rlock_is_marked_reentrant(self):
        program, _ = _build_fixture("good_rlock_reentrant.py")
        (lock,) = program.iter_lock_ids()
        assert lock.name == "ReentrantCounter._lock"
        assert lock.reentrant

    def test_plain_locks_are_not_reentrant(self):
        program, _ = _build_fixture("bad_lock_order_cycle.py")
        assert all(not lock.reentrant for lock in program.iter_lock_ids())
        assert {lock.name for lock in program.iter_lock_ids()} == {
            "Ledger._lock", "Journal._lock", "Counter._lock",
        }

    def test_lock_identity_carries_the_declaration_line(self):
        program, _ = _build_fixture("bad_thread_escape.py")
        (lock,) = program.iter_lock_ids()
        assert lock.line == 14  # the threading.Lock() call in __init__


class TestCallGraph:
    def test_cycle_fixture_acquisition_edges(self):
        _, graph = _build_fixture("bad_lock_order_cycle.py")
        edges = {(e.src.name, e.dst.name) for e in graph.edges.values()}
        assert edges == {
            ("Ledger._lock", "Journal._lock"),
            ("Journal._lock", "Ledger._lock"),
            ("Counter._lock", "Counter._lock"),
        }

    def test_edge_witness_names_the_call_chain(self):
        _, graph = _build_fixture("bad_lock_order_cycle.py")
        by_pair = {(e.src.name, e.dst.name): e for e in graph.edges.values()}
        witness = by_pair[("Ledger._lock", "Journal._lock")].witness
        assert "post" in witness and "append" in witness

    def test_rlock_reacquire_is_not_an_edge(self):
        _, graph = _build_fixture("good_rlock_reentrant.py")
        assert graph.edges == {}

    def test_real_tree_edges_match_the_runtime_witnessed_orders(self):
        root = REPO_ROOT / "src" / "repro"
        sources = [
            SourceFile.read(str(p), p.read_text(encoding="utf-8"))
            for p in sorted(root.rglob("*.py"))
        ]
        program = build_program(sources)
        graph = CallGraph(program)
        edges = {(e.src.name, e.dst.name) for e in graph.edges.values()}
        assert ("RequestScheduler._lock", "SQLiteResponseStore._lock") in edges
        assert ("RequestScheduler._lock", "JSONLResponseStore._lock") in edges


class TestRuleFindings:
    def test_lock_order_cycle_reports_cycle_and_self_deadlock(self):
        report = _analyze("bad_lock_order_cycle.py")
        findings = sorted(report.active, key=lambda f: f.line)
        assert [f.rule for f in findings] == ["lock-order-cycle"] * 2
        cycle, self_deadlock = findings
        assert "Ledger._lock -> Journal._lock" in cycle.message
        assert "Journal._lock -> Ledger._lock" in cycle.message
        assert "self-deadlock" in self_deadlock.message
        assert "Counter._lock" in self_deadlock.message

    def test_async_blocking_chases_the_sync_chain(self):
        report = _analyze("bad_async_blocking.py")
        (finding,) = report.active
        assert finding.rule == "async-blocking-call"
        assert finding.line == 14  # inside handle(), not down in _fetch()
        assert "time.sleep" in finding.message
        assert "_lookup" in finding.message and "_fetch" in finding.message

    def test_thread_escape_flags_only_the_unguarded_write(self):
        report = _analyze("bad_thread_escape.py")
        (finding,) = report.active
        assert finding.rule == "thread-escape"
        assert finding.line == 22
        assert "count" in finding.message

    def test_holds_transitive_crosses_the_object_boundary(self):
        report = _analyze("bad_holds_transitive.py")
        (finding,) = report.active
        assert finding.rule == "holds-transitive"
        assert finding.line == 29
        assert "flush" in finding.message

    def test_good_rlock_fixture_is_clean(self):
        report = _analyze("good_rlock_reentrant.py")
        assert report.ok and not list(report.active)

    def test_real_tree_is_interproc_clean(self):
        report = analyze_paths(
            [REPO_ROOT / "src" / "repro", REPO_ROOT / "scripts"],
            interproc=True,
        )
        assert report.ok, "\n".join(f.render() for f in report.active)
        # The deliberate service exceptions are suppressed, not absent.
        suppressed_rules = {f.rule for f in report.suppressed}
        assert {"async-blocking-call", "thread-escape"} <= suppressed_rules


_SYNTH_PATH = "src/repro/fake/pipes.py"
_SYNTH = """\
import threading


class Outer:
    def __init__(self, inner: "Inner") -> None:
        self._lock = threading.Lock()
        self.inner = inner

    def work(self):
        with self._lock:
            self.inner.poke()


class Inner:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def poke(self):
        with self._lock:
            pass
"""


class TestWitnessCrossCheck:
    @pytest.fixture()
    def synth(self):
        program, graph = _build(_SYNTH_PATH, _SYNTH)
        locks = {lock.name: lock for lock in program.iter_lock_ids()}
        return program, graph, locks["Outer._lock"], locks["Inner._lock"]

    def test_matching_edge_is_observed(self, synth):
        program, graph, outer, inner = synth
        edge = WitnessEdge(_SYNTH_PATH, outer.line, _SYNTH_PATH, inner.line, 5)
        result = cross_check(program, graph, [edge])
        assert result.ok
        assert [(e.src.name, e.dst.name) for e in result.observed] == [
            ("Outer._lock", "Inner._lock")
        ]
        assert result.unobserved == []

    def test_unmodeled_edge_is_a_problem(self, synth):
        program, graph, outer, inner = synth
        # The runtime saw the *inverse* order — the graph has no such edge.
        edge = WitnessEdge(_SYNTH_PATH, inner.line, _SYNTH_PATH, outer.line, 1)
        result = cross_check(program, graph, [edge])
        assert not result.ok
        (problem,) = result.problems
        assert "missing from the static graph" in problem
        assert "Inner._lock -> Outer._lock" in problem
        # The static edge stays unobserved.
        assert len(result.unobserved) == 1

    def test_unknown_creation_site_is_a_problem(self, synth):
        program, graph, outer, _ = synth
        edge = WitnessEdge(_SYNTH_PATH, outer.line, _SYNTH_PATH, 999, 1)
        result = cross_check(program, graph, [edge])
        assert not result.ok
        (problem,) = result.problems
        assert "no static declaration" in problem and ":999" in problem

    def test_out_of_scope_edges_are_skipped(self, synth):
        program, graph, outer, _ = synth
        edge = WitnessEdge(
            "concurrent/futures/thread.py", 155, _SYNTH_PATH, outer.line, 94
        )
        result = cross_check(program, graph, [edge])
        assert result.ok and result.n_skipped == 1

    def test_parse_witness_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            parse_witness({"schema_version": 999, "edges": []})

    def test_parse_witness_canonicalizes_paths(self):
        payload = {
            "schema_version": 1,
            "edges": [
                {
                    "src": {"path": "/abs/src/repro/core/scheduler.py", "line": 319},
                    "dst": {"path": "/abs/src/repro/core/store.py", "line": 135},
                    "count": 2,
                }
            ],
        }
        (edge,) = parse_witness(payload)
        assert edge.src_site == ("src/repro/core/scheduler.py", 319)
        assert edge.dst_site == ("src/repro/core/store.py", 135)
        assert edge.count == 2


class TestBaselineRatchet:
    def test_round_trip_and_counts(self, tmp_path):
        report = analyze_paths([CORE_FIXTURES / "bad_determinism.py"])
        destination = tmp_path / "baseline.json"
        write_baseline(destination, report)
        baseline = load_baseline(destination)
        assert baseline == baseline_counts(report.findings)
        assert all("::" in key for key in baseline)
        assert new_versus_baseline(report, baseline) == {}

    def test_regressions_exceeding_the_baseline_are_reported(self):
        report = analyze_paths([CORE_FIXTURES / "bad_determinism.py"])
        counts = baseline_counts(report.findings)
        key = sorted(counts)[0]
        shrunk = dict(counts)
        shrunk[key] -= 1
        regressions = new_versus_baseline(report, shrunk)
        assert regressions == {key: 1}

    def test_schema_mismatch_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"schema_version": 999, "counts": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(bad)
        assert BASELINE_SCHEMA_VERSION == 1

    def test_cli_ratchet_exit_codes(self, tmp_path, capsys):
        bad = str(FIXTURES / "bad_lock_order_cycle.py")
        baseline = tmp_path / "baseline.json"
        args = [bad, "--interproc"]
        assert lint_main(args + ["--write-baseline", str(baseline)]) == 0
        # Findings covered by the baseline pass strict mode...
        assert lint_main(args + ["--strict", "--baseline", str(baseline)]) == 0
        # ...an empty baseline fails it...
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"schema_version": 1, "counts": {}}))
        assert lint_main(args + ["--strict", "--baseline", str(empty)]) == 1
        # ...and a missing baseline is a usage error, not a silent pass.
        missing = str(tmp_path / "missing.json")
        assert lint_main(args + ["--strict", "--baseline", missing]) == 2
        capsys.readouterr()
