"""Known-bad fixture: every determinism rule fires in this file."""

import random
import time
import uuid


def wallclock_stamp():
    # det-wallclock: current-time read in deterministic code.
    return time.time()


def global_rng_draw():
    # det-unseeded-rng: hidden module-level RNG state.
    return random.random()


def entropy_identifier():
    # det-unseeded-rng: OS entropy.
    return uuid.uuid4().hex


def unseeded_instance():
    # det-unseeded-rng: Random() without the configured seed.
    return random.Random()


def hash_order_leak(items):
    out = []
    # det-set-iter: per-process hash order escapes into the output.
    for item in {value for value in items}:
        out.append(item)
    return out


def joined_set(items):
    # det-set-iter: str.join over a set literal.
    return ",".join({str(item) for item in items})
