"""Fixture that does not parse: the runner must report it, not crash."""

def broken(:
    pass
