"""Known-bad fixture: the resource-hygiene rule fires in this file."""

import sqlite3


class NoCloseOwner:
    def __init__(self, path):
        # res-handle: stored on self, but the class defines no close().
        self.conn = sqlite3.connect(path)


def leaked_connection(path):
    # res-handle: never closed, never returned, never escapes.
    conn = sqlite3.connect(path)
    return conn.execute("SELECT 1").fetchone()


def discarded_handle(path):
    # res-handle: the descriptor is discarded immediately.
    open(path).read()
