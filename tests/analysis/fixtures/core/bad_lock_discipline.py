"""Known-bad fixture: every lock-discipline rule fires in this file.

The ``core`` directory segment in this fixture's path is what opts it into
the scoped checkers; the ``fixtures`` segment keeps it out of real scans.
"""

import threading


class BadScheduler:
    def __init__(self, model, store):
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._queue = []  # guarded-by: _lock
        self.model = model
        self.store = store

    def _drain(self):  # holds: _lock
        return list(self._queue)

    def unguarded_access(self):
        # lock-guarded-attr: reads self._queue without holding self._lock.
        return len(self._queue)

    def missing_precondition(self):
        # lock-holds-caller: _drain requires the lock held on entry.
        return self._drain()

    def bare_wait(self):
        with self._lock:
            # lock-wait-while: no predicate loop around the wait.
            self._arrived.wait(0.1)

    def model_io_under_lock(self, prompt):
        with self._lock:
            # lock-io-held: generation latency extends the lock hold.
            return self.model.generate(prompt)

    def store_io_under_lock(self, prompt, params):
        with self._arrived:
            # lock-io-held via the condition alias of the same lock.
            self.store.put(prompt, params, "response")
