"""Known-bad fixture: awaiting while holding a threading lock.

Exactly ONE active violation (the executable spec of ``lock-await-held``):

1. ``await`` inside a ``with self._lock:`` block — the coroutine suspends
   mid-critical-section, parking a *threading* lock for the full duration
   of the awaited work (or deadlocking if that work needs the lock).

The clean coroutine below it shows the correct shape — resolve the future
outside the lock — and must NOT be flagged.
"""

import asyncio
import threading


class BadAsyncBridge:
    """An asyncio↔threads bridge that awaits mid-critical-section."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._results: dict[str, str] = {}  # guarded-by: _lock

    async def lookup_and_wait(self, key: str, fut: "asyncio.Future[str]") -> str:
        with self._lock:
            if key in self._results:
                return self._results[key]
            # VIOLATION: the coroutine suspends here with _lock held; every
            # worker thread contending for it stalls until `fut` resolves.
            value = await fut
            self._results[key] = value
            return value

    async def lookup_then_wait(self, key: str, fut: "asyncio.Future[str]") -> str:
        # Clean: the lock bounds the dict access; the await happens outside.
        with self._lock:
            if key in self._results:
                return self._results[key]
        value = await fut
        with self._lock:
            self._results[key] = value
        return value
