"""Fixture for suppression handling: one silenced site, one live one."""

import time


def allowlisted_stamp():
    # Explained allowlist entry: this fixture models store-style metadata.
    return time.time()  # repro-lint: disable=det-wallclock


def live_stamp():
    return time.time_ns()
