"""Known-bad fixture: every picklability rule fires in this file."""

import pickle
import threading
from concurrent.futures import ProcessPoolExecutor


def ship_lambda(pool: ProcessPoolExecutor):
    # pickle-submit: lambdas cannot cross the process boundary.
    return pool.submit(lambda: 1)


def ship_closure(pool: ProcessPoolExecutor, payload):
    def worker():
        return payload

    # pickle-submit: nested functions cannot be pickled either.
    return pool.submit(worker)


def ship_initializer(pool_cls):
    # pickle-submit: the initializer also crosses the boundary.
    return pool_cls(max_workers=2, initializer=lambda: None)


def bad_spec(path):
    # pickle-spec: a lock and an open handle inside the pickled payload.
    return pickle.dumps({"lock": threading.Lock(), "handle": open(path)})
