"""Known-good fixture: re-acquiring a held ``threading.RLock`` is legal.

The same call shape as ``Counter`` in ``bad_lock_order_cycle.py`` — a
helper re-acquires the lock its caller holds — but over an RLock, which is
reentrant by definition.  The interprocedural pass must stay silent.
"""

import threading


class ReentrantCounter:
    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.value = 0

    def bump(self):
        with self._lock:
            self._bump_locked()

    def _bump_locked(self):
        with self._lock:  # legal: RLocks are reentrant
            self.value += 1
