"""Known-bad fixture: unguarded state written from a drainer thread.

``Pump.start`` hands ``_loop`` to a thread; ``_loop`` writes
``self.count`` with no ``# guarded-by:`` annotation and no lock held —
the `thread-escape` hazard.  The write to ``self.safe`` is the good twin:
annotated, and performed under its lock.
"""

import threading


class Pump:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.safe = 0  # guarded-by: _lock

    def start(self):
        threading.Thread(target=self._loop, daemon=True).start()

    def _loop(self):
        self.count = self.count + 1  # escapes: unannotated, no lock held
        with self._lock:
            self.safe = self.safe + 1  # fine: annotated and locked
