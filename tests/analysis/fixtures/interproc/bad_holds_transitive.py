"""Known-bad fixture: a ``# holds:`` method reached without its lock.

``Manager.tick`` -> ``_relay`` -> ``worker.flush()`` crosses an object
boundary into a ``# holds: _lock`` method with nothing held — the lexical
per-class rule cannot see it, `holds-transitive` must.  ``guarded_tick`` is
the good twin: it acquires the worker's lock at the call site.
"""

import threading


class Worker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._backlog = []  # guarded-by: _lock

    def flush(self):  # holds: _lock
        self._backlog.clear()


class Manager:
    def __init__(self, worker: "Worker") -> None:
        self.worker = worker

    def tick(self):
        self._relay()

    def _relay(self):
        self.worker.flush()  # enters the holds-method with no lock held

    def guarded_tick(self):
        with self.worker._lock:
            self.worker.flush()  # fine: the precondition is satisfied
