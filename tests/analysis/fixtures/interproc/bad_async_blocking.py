"""Known-bad fixture: a coroutine reaching a blocking call two frames down.

``SlowBridge.handle`` never blocks lexically — the ``time.sleep`` hides two
sync calls below it, which is exactly what `async-blocking-call` must chase
through the call graph.  ``handle_fast`` is the good twin: same shape, but
the sync chain stays non-blocking.
"""

import time


class SlowBridge:
    async def handle(self, request):
        return self._lookup(request)

    def _lookup(self, request):
        return self._fetch(request)

    def _fetch(self, request):
        time.sleep(0.1)  # blocks the event loop, two frames below handle()
        return request

    async def handle_fast(self, request):
        return self._shape(request)

    def _shape(self, request):
        return {"request": request}
