"""Known-bad fixture: a lock-acquisition-order cycle across two classes.

``Ledger.post`` takes ``Ledger._lock`` then ``Journal._lock`` (through
``journal.append``); ``Journal.audit`` takes them in the opposite order
(through ``ledger.balance``).  Interleaved, the two threads deadlock —
the whole point of `lock-order-cycle`.

``Counter`` adds the self-deadlock shape: a non-reentrant ``Lock``
re-acquired through a helper call (see ``good_rlock_reentrant.py`` for the
legal RLock twin).
"""

import threading


class Ledger:
    def __init__(self, journal: "Journal") -> None:
        self._lock = threading.Lock()
        self.journal = journal

    def post(self, entry):
        # Order: Ledger._lock -> Journal._lock.
        with self._lock:
            self.journal.append(entry)

    def balance(self):
        with self._lock:
            return 0


class Journal:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.ledger: "Ledger | None" = None

    def append(self, entry):
        with self._lock:
            del entry

    def audit(self):
        # Order: Journal._lock -> Ledger._lock — the inverse of post().
        with self._lock:
            return self.ledger.balance()


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def bump(self):
        with self._lock:
            self._bump_locked()

    def _bump_locked(self):
        # Re-acquires the plain (non-reentrant) Lock the caller holds.
        with self._lock:
            self.value += 1
