"""TSan-lite runtime lock checker for the scheduler/store test modules.

The static lock-discipline checker (``repro lint``) proves what it can see
lexically; this pytest plugin watches the locks *run*.  While a test from an
instrumented module executes:

* ``threading.Lock`` is swapped for :class:`InstrumentedLock`, which records
  a per-thread held-lock stack and a global acquisition-order graph.
  Acquiring ``B`` while holding ``A`` when some thread previously acquired
  ``A`` while holding ``B`` is a **lock-order inversion** — the classic
  deadlock shape — and fails the test at teardown even though the schedule
  that would actually deadlock was not hit.
* ``RequestScheduler``'s ``# guarded-by: _lock`` attributes (harvested from
  the same source annotations the static checker reads, so the two can
  never drift apart) are watched at ``__setattr__`` time: rebinding one
  after ``__init__`` without holding the lock raises immediately.

``threading.Condition`` needs no separate wrapper: a condition built around
an instrumented lock routes every acquire/release (including the
release/reacquire inside ``wait``) through the wrapper.  Standalone
conditions own a private RLock and are not tracked.

The plugin instruments the modules in :data:`INSTRUMENTED_MODULES`
automatically; the self-tests drive :func:`activate`/:func:`deactivate`
directly and inject a deliberate inversion to prove detection works.

When ``LOCKCHECK_WITNESS=<path>`` is set, every observed acquisition order
is also accumulated across the whole run — keyed by the *creation sites* of
the two locks (the file and line of the ``threading.Lock()`` call, the same
identity the static interprocedural analyzer assigns) — and dumped as a
JSON witness at session end.  ``scripts/lock_witness_check.py`` cross-checks
that file against the static acquisition graph.  The env var additionally
extends instrumentation to the service test modules (:data:`WITNESS_MODULES`)
so the asyncio-service lock orders are witnessed too.
"""

from __future__ import annotations

import ast
import inspect
import json
import os
import threading
from pathlib import Path
from typing import Callable

#: Test-file stems whose tests run with instrumentation switched on.
INSTRUMENTED_MODULES = frozenset(
    {"test_scheduler", "test_store", "test_querying_store"}
)

#: Additional stems instrumented only while witness recording is enabled.
WITNESS_MODULES = frozenset(
    {"test_admission", "test_concurrency", "test_drain_and_stats", "test_endpoints"}
)

#: A lock creation site: (absolute source path, line of the factory call).
Site = tuple[str, int]


class LockOrderViolation(AssertionError):
    """A lock-order inversion or guarded-attribute breach was observed."""


class LockRegistry:
    """Acquisition-order graph plus per-thread held stacks."""

    def __init__(self) -> None:
        self._graph_lock = threading.Lock()
        #: (id(first), id(second)) -> (first.name, second.name); the edge
        #: means "second was acquired while first was held".
        self.edges: dict[tuple[int, int], tuple[str, str]] = {}
        #: Parallel to ``edges``: the creation sites of the two locks
        #: (``None`` for locks constructed directly, without the factory).
        self.edge_sites: dict[tuple[int, int], tuple[Site | None, Site | None]] = {}
        #: Parallel to ``edges``: how many times each order was observed.
        self.edge_counts: dict[tuple[int, int], int] = {}
        self.violations: list[str] = []
        self._local = threading.local()

    def _stack(self) -> list["InstrumentedLock"]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def holds(self, lock: "InstrumentedLock") -> bool:
        return lock in self._stack()

    def on_acquire(self, lock: "InstrumentedLock") -> None:
        stack = self._stack()
        with self._graph_lock:
            for holder in stack:
                if holder is lock:
                    continue
                edge = (id(holder), id(lock))
                inverse = (id(lock), id(holder))
                if inverse in self.edges and edge not in self.edges:
                    first, second = self.edges[inverse]
                    self.violations.append(
                        f"lock-order inversion: acquiring {lock.name} while "
                        f"holding {holder.name}, but {second} was previously "
                        f"acquired while holding {first} — the two orders "
                        "can deadlock"
                    )
                self.edges[edge] = (holder.name, lock.name)
                self.edge_sites[edge] = (holder.site, lock.site)
                self.edge_counts[edge] = self.edge_counts.get(edge, 0) + 1
        stack.append(lock)

    def on_release(self, lock: "InstrumentedLock") -> None:
        stack = self._stack()
        if lock in stack:
            stack.remove(lock)


class InstrumentedLock:
    """API-compatible ``threading.Lock`` wrapper feeding a registry."""

    def __init__(
        self,
        registry: LockRegistry,
        name: str = "lock",
        site: Site | None = None,
    ) -> None:
        self._inner = _REAL_LOCK()
        self._registry = registry
        self.name = name
        self.site = site

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._registry.on_acquire(self)
        return acquired

    def release(self) -> None:
        self._registry.on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstrumentedLock {self.name} locked={self.locked()}>"


#: The real factory, captured at import time so patching cannot recurse.
_REAL_LOCK = threading.Lock


def _creation_site() -> Site | None:
    """Creation site of the frame that called ``threading.Lock()``."""
    frame = inspect.currentframe()
    try:
        caller = frame.f_back.f_back if frame and frame.f_back else None
        if caller is None:  # pragma: no cover - interpreter-dependent
            return None
        return (caller.f_code.co_filename, caller.f_lineno)
    finally:
        del frame


def _guarded_layout(cls: type):
    """Harvest the ``# guarded-by:`` layout of ``cls`` from its source.

    Reuses the static checker's parser so the runtime guard and the lint
    rule read the identical annotations.
    """
    from repro.analysis.base import SourceFile
    from repro.analysis.checkers.lock_discipline import _harvest

    path = inspect.getsourcefile(cls)
    assert path is not None
    text = Path(path).read_text(encoding="utf-8")
    source = SourceFile.read(path, text)
    for node in ast.walk(ast.parse(text)):
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            return _harvest(node, source)
    raise LookupError(f"class {cls.__name__} not found in {path}")


class _Instrumentation:
    """One activation: the patched factory plus the guarded-attr hooks."""

    def __init__(self, registry: LockRegistry) -> None:
        self.registry = registry
        self._undo: list[Callable[[], None]] = []

    def install(self) -> None:
        registry = self.registry

        def lock_factory() -> InstrumentedLock:
            site = _creation_site()
            name = f"{Path(site[0]).name}:{site[1]}" if site else "lock"
            return InstrumentedLock(registry, name=name, site=site)

        threading.Lock = lock_factory  # type: ignore[misc]
        self._undo.append(lambda: setattr(threading, "Lock", _REAL_LOCK))
        self._guard_scheduler()

    def uninstall(self) -> None:
        while self._undo:
            self._undo.pop()()

    def _guard_scheduler(self) -> None:
        from repro.core.scheduler import RequestScheduler

        layout = _guarded_layout(RequestScheduler)
        registry = self.registry
        original_setattr = RequestScheduler.__setattr__
        original_init = RequestScheduler.__init__

        def guarded_setattr(self, name, value):
            lock_attr = layout.guarded.get(name)
            if lock_attr is not None and self.__dict__.get("_lockcheck_ready"):
                lock = getattr(self, layout.base(lock_attr), None)
                if isinstance(lock, InstrumentedLock) and not registry.holds(lock):
                    raise LockOrderViolation(
                        f"guarded attribute '{name}' rebound without "
                        f"holding '{layout.base(lock_attr)}' "
                        "(# guarded-by annotation in __init__)"
                    )
            original_setattr(self, name, value)

        def guarded_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            self.__dict__["_lockcheck_ready"] = True

        RequestScheduler.__setattr__ = guarded_setattr  # type: ignore[method-assign]
        RequestScheduler.__init__ = guarded_init  # type: ignore[method-assign]
        self._undo.append(
            lambda: setattr(RequestScheduler, "__setattr__", original_setattr)
        )
        self._undo.append(
            lambda: setattr(RequestScheduler, "__init__", original_init)
        )


_ACTIVE: _Instrumentation | None = None

#: Run-wide witness: (src site, dst site) -> observation count, folded in
#: from each registry at deactivate().  Edges whose locks were built
#: directly (no factory, so no site) carry no identity and are dropped.
_WITNESS: dict[tuple[Site, Site], int] = {}


def witness_path() -> Path | None:
    """Target of ``LOCKCHECK_WITNESS``, or ``None`` when not recording."""
    value = os.environ.get("LOCKCHECK_WITNESS")
    return Path(value) if value else None


def _fold_witness(registry: LockRegistry) -> None:
    for edge, count in registry.edge_counts.items():
        src, dst = registry.edge_sites[edge]
        if src is None or dst is None:
            continue
        key = (src, dst)
        _WITNESS[key] = _WITNESS.get(key, 0) + count


def write_witness(path: Path) -> None:
    """Dump the accumulated witness in the cross-checker's schema."""
    payload = {
        "schema_version": 1,
        "edges": [
            {
                "src": {"path": src[0], "line": src[1]},
                "dst": {"path": dst[0], "line": dst[1]},
                "count": count,
            }
            for (src, dst), count in sorted(_WITNESS.items())
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def activate(registry: LockRegistry | None = None) -> LockRegistry:
    """Switch instrumentation on; returns the registry collecting events."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("lockcheck is already active")
    instrumentation = _Instrumentation(registry or LockRegistry())
    instrumentation.install()
    _ACTIVE = instrumentation
    return instrumentation.registry


def deactivate() -> list[str]:
    """Switch instrumentation off; returns the recorded violations."""
    global _ACTIVE
    if _ACTIVE is None:
        return []
    violations = list(_ACTIVE.registry.violations)
    _fold_witness(_ACTIVE.registry)
    _ACTIVE.uninstall()
    _ACTIVE = None
    return violations


class LockCheckPlugin:
    """pytest hooks: instrument the scheduler/store test modules."""

    def _applies(self, item) -> bool:
        path = getattr(item, "path", None)
        if path is None:
            return False
        if path.stem in INSTRUMENTED_MODULES:
            return True
        return witness_path() is not None and path.stem in WITNESS_MODULES

    def pytest_runtest_setup(self, item) -> None:
        if self._applies(item):
            activate()

    def pytest_runtest_teardown(self, item) -> None:
        if self._applies(item):
            violations = deactivate()
            if violations:
                raise LockOrderViolation(
                    "lockcheck observed {} violation(s):\n  {}".format(
                        len(violations), "\n  ".join(violations)
                    )
                )

    def pytest_sessionfinish(self, session, exitstatus) -> None:
        path = witness_path()
        if path is not None:
            write_witness(path)
