"""Tests for the experiment-suite orchestrator (registry, DAG, artifacts).

End-to-end runs are restricted to the two cheapest experiments (``shift``
and ``table1_cost`` cost no model queries; ``table2_rules`` is used where a
store-backed experiment is required) so the suite machinery is exercised
without replaying the whole paper on every test run — CI's suite-repro job
does that.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import suite
from repro.experiments.suite import (
    ExperimentSpec,
    PaperTarget,
    ShardJournal,
    SuiteOptions,
    discover,
    experiment_module_names,
    load_results,
    ordered_specs,
    plan_shards,
    render_experiments_index,
    render_report,
    run_suite,
    select_experiments,
)


@pytest.fixture(scope="module")
def registry() -> dict[str, ExperimentSpec]:
    return discover()


class TestRegistry:
    def test_every_experiment_module_registered_exactly_once(self, registry):
        """Each artefact module registers one spec under its own name."""
        modules = {
            spec.module.rsplit(".", 1)[-1] for spec in registry.values()
        }
        assert modules == set(experiment_module_names())
        # Exactly once: names are dict keys, so a second registration from a
        # different module would have raised; check the module mapping is 1:1.
        assert len(registry) == len(modules)

    def test_specs_are_well_formed(self, registry):
        orders = [spec.order for spec in registry.values()]
        assert len(set(orders)) == len(orders), "duplicate paper order"
        for spec in registry.values():
            assert spec.artifact and spec.title and callable(spec.run)
            for target in spec.targets:
                assert target.metric and target.description
            for dependency in spec.after:
                assert dependency in registry
            if spec.shard_param is not None:
                assert spec.shard_param in spec.params

    def test_duplicate_name_from_other_module_rejected(self, registry):
        spec = next(iter(registry.values()))
        clone = ExperimentSpec(
            name=spec.name,
            artifact=spec.artifact,
            title=spec.title,
            run=spec.run,
            module="somewhere.else",
            order=99,
        )
        with pytest.raises(ConfigurationError, match="registered by both"):
            suite.register(clone)


class TestSelection:
    def test_only_filters_by_glob(self, registry):
        selected = select_experiments(registry, only=["table4*"])
        assert [spec.name for spec in selected] == ["table4_zeroshot"]
        selected = select_experiments(registry, only=["table*"])
        assert {spec.name for spec in selected} == {
            name for name in registry if name.startswith("table")
        }

    def test_skip_removes_matches(self, registry):
        selected = select_experiments(registry, skip=["fig*", "perclass"])
        names = {spec.name for spec in selected}
        assert "perclass" not in names
        assert not any(name.startswith("fig") for name in names)
        assert "table4_zeroshot" in names

    def test_only_and_skip_compose(self, registry):
        selected = select_experiments(
            registry, only=["table*"], skip=["table4*"]
        )
        names = {spec.name for spec in selected}
        assert "table4_zeroshot" not in names
        assert "table2_rules" in names

    def test_unknown_pattern_is_an_error(self, registry):
        with pytest.raises(ConfigurationError, match="matches no experiment"):
            select_experiments(registry, only=["tabel4*"])

    def test_selection_preserves_paper_order(self, registry):
        selected = select_experiments(registry)
        assert selected == ordered_specs(registry)


class TestPlanning:
    def test_sharded_experiments_fan_out(self, registry):
        tasks = plan_shards([registry["table2_rules"]], quick=True)
        assert [task.shard for task in tasks] == [
            "sotab-27", "d4-20", "amstr-56", "pubchem-20",
        ]
        for task in tasks:
            assert task.params["benchmarks"] == [task.shard]

    def test_dependency_on_unselected_experiment_is_dropped(self, registry):
        (task,) = plan_shards([registry["fig6_features"]], quick=True)
        assert task.after == ()
        tasks = plan_shards(
            [registry["table3_finetuned"], registry["fig6_features"]],
            quick=True,
        )
        fig6 = next(t for t in tasks if t.experiment == "fig6_features")
        assert fig6.after == ("table3_finetuned",)

    def test_fingerprint_changes_with_work(self, registry):
        (a,) = plan_shards([registry["shift"]], quick=True)
        (b,) = plan_shards([registry["shift"]], quick=True, seed=1)
        (c,) = plan_shards([registry["shift"]], quick=True, n_columns=33)
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_dependency_cycle_rejected(self, registry):
        base = registry["shift"]
        looped = ExperimentSpec(
            name="loop_a", artifact="x", title="x", run=base.run,
            module=base.module, order=90, after=("loop_b",),
        )
        other = ExperimentSpec(
            name="loop_b", artifact="x", title="x", run=base.run,
            module=base.module, order=91, after=("loop_a",),
        )
        with pytest.raises(ConfigurationError, match="cycle"):
            plan_shards([looped, other], quick=True)


class TestPaperTarget:
    def test_tolerance_band(self):
        target = PaperTarget("m", "d", paper_value=60.0, tolerance=5.0)
        assert target.status(64.0) == "pass"
        assert target.status(66.0) == "fail"
        assert target.status(None) == "missing"
        assert target.delta(64.0) == pytest.approx(4.0)

    def test_shape_bounds_and_info(self):
        assert PaperTarget("m", "d", min_value=0.0).status(1.0) == "pass"
        assert PaperTarget("m", "d", min_value=0.0).status(-1.0) == "fail"
        assert PaperTarget("m", "d", max_value=2.0).status(1.0) == "pass"
        assert PaperTarget("m", "d").status(123.0) == "info"


class TestSuiteRuns:
    OPTIONS = dict(quick=True, jobs=1, only=("shift", "table1_cost"),
                   progress=None)

    def test_end_to_end_writes_artifacts(self, tmp_path):
        result = run_suite(
            SuiteOptions(cache_dir=tmp_path / "cache", **self.OPTIONS)
        )
        assert result.ok
        assert {e.name for e in result.experiments} == {"shift", "table1_cost"}
        results_path = tmp_path / "cache" / "results.json"
        report_path = tmp_path / "cache" / "REPORT.md"
        assert results_path.exists() and report_path.exists()
        report = report_path.read_text(encoding="utf-8")
        assert "Measured vs. paper targets" in report
        assert "Section 1" in report and "Table 1" in report
        payload = json.loads(results_path.read_text(encoding="utf-8"))
        assert payload["schema_version"] == suite.RESULTS_SCHEMA_VERSION
        assert payload["totals"]["n_evaluations"] == 3

    def test_results_json_schema_round_trip(self, tmp_path):
        result = run_suite(
            SuiteOptions(output_dir=tmp_path, **self.OPTIONS)
        )
        loaded = load_results(tmp_path / "results.json")
        assert loaded.to_dict() == result.to_dict()
        # A second serialize → parse cycle is byte-stable.
        loaded.write(tmp_path / "again.json")
        assert (
            (tmp_path / "again.json").read_text()
            == (tmp_path / "results.json").read_text()
        )

    def test_schema_version_mismatch_rejected(self, tmp_path):
        run_suite(SuiteOptions(output_dir=tmp_path, **self.OPTIONS))
        payload = json.loads((tmp_path / "results.json").read_text())
        payload["schema_version"] = 999
        (tmp_path / "results.json").write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="schema version"):
            load_results(tmp_path / "results.json")

    def test_empty_selection_is_an_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_suite(
                SuiteOptions(
                    quick=True, only=("shift",), skip=("shift",),
                    output_dir=tmp_path, progress=None,
                )
            )

    def test_failing_experiment_reported_not_raised(self, tmp_path, registry):
        broken = ExperimentSpec(
            name="broken", artifact="none", title="always fails",
            run=_always_raise, module=__name__, order=80,
        )
        suite._REGISTRY["broken"] = broken
        try:
            result = run_suite(
                SuiteOptions(
                    quick=True, jobs=1, only=("broken", "shift"),
                    output_dir=tmp_path, progress=None,
                )
            )
        finally:
            del suite._REGISTRY["broken"]
        assert not result.ok
        by_name = {e.name: e for e in result.experiments}
        assert by_name["broken"].status == "error"
        assert "deliberately broken" in by_name["broken"].errors[0]
        assert by_name["shift"].status == "ok"


class TestResume:
    def test_killed_worker_shard_resumes_warm_from_store(self, tmp_path):
        """A shard missing from the journal re-runs with zero model queries.

        Simulates a worker killed mid-suite: the cold run completes and
        journals every shard, then one shard's journal entry is dropped (as
        if the worker died before recording it) while the response store
        keeps the answers its evaluations already paid for.  Resuming must
        replay the journalled shards without re-executing them and re-run
        the "killed" one entirely from the store.
        """
        cache_dir = tmp_path / "cache"
        options = dict(
            quick=True, jobs=1, only=("table2_rules",), progress=None,
            cache_dir=cache_dir,
        )
        cold = run_suite(SuiteOptions(**options))
        assert cold.ok and cold.totals["n_queries"] > 0

        journal_path = (
            cache_dir / suite.SUITE_RUNS_DIRNAME / cold.suite_run_id
            / suite.SHARD_JOURNAL_FILENAME
        )
        lines = journal_path.read_text(encoding="utf-8").splitlines()
        kept = [line for line in lines if json.loads(line)["shard"] != "d4-20"]
        assert len(kept) == len(lines) - 1
        journal_path.write_text("\n".join(kept) + "\n", encoding="utf-8")

        resumed = run_suite(
            SuiteOptions(resume=cold.suite_run_id, **options)
        )
        assert resumed.ok
        # The re-run shard was answered entirely by the persistent store...
        assert resumed.totals["n_queries"] == 0
        assert resumed.totals["n_store_hits"] > 0
        # ...its metrics are bit-identical to the cold run's...
        assert (
            resumed.experiments[0].metrics == cold.experiments[0].metrics
        )
        # ...and only that shard actually executed (3 replayed, 1 live).
        shards = {
            s["shard"]: s for s in resumed.experiments[0].shards
        }
        assert shards["d4-20"]["cached"] is False
        assert all(
            shards[name]["cached"] for name in shards if name != "d4-20"
        )

    def test_resume_requires_cache_dir(self):
        with pytest.raises(ConfigurationError, match="cache-dir"):
            run_suite(
                SuiteOptions(quick=True, resume="nope", only=("shift",),
                             progress=None)
            )

    def test_resume_unknown_run_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no suite journal"):
            run_suite(
                SuiteOptions(
                    quick=True, resume="missing-run", only=("shift",),
                    cache_dir=tmp_path, progress=None,
                )
            )

    def test_stale_fingerprint_reruns_shard(self, tmp_path):
        """Journalled results are only reused for identical work."""
        options = dict(quick=True, jobs=1, only=("shift",), progress=None,
                       cache_dir=tmp_path / "cache")
        cold = run_suite(SuiteOptions(**options))
        resumed = run_suite(
            SuiteOptions(resume=cold.suite_run_id, seed=7, **options)
        )
        (shard,) = resumed.experiments[0].shards
        assert shard["cached"] is False


class TestRendering:
    def test_report_marks_failed_targets(self, registry, tmp_path):
        result = run_suite(
            SuiteOptions(quick=True, only=("shift",), progress=None,
                         output_dir=tmp_path)
        )
        text = render_report(result, registry)
        assert "| pass |" in text or "| fail |" in text

    def test_experiments_index_lists_every_spec(self, registry):
        text = render_experiments_index(registry)
        for name in registry:
            assert f"`{name}`" in text


def _always_raise(config):
    raise RuntimeError("deliberately broken")
