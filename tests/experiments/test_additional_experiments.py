"""Structural tests for the remaining experiment modules (Tables 2, 5 and the
Section 1 distribution-shift experiment).  Shape assertions use small splits
and generous margins; the benchmark suite checks the same shapes at scale."""

from __future__ import annotations

import pytest

from repro.experiments import shift, table2_rules, table5_established

COLUMNS = 100


@pytest.mark.slow
class TestTable2Structure:
    def test_rows_cover_all_zero_shot_benchmarks(self):
        rows = table2_rules.run_table2(
            n_columns=COLUMNS, models=("t5",), methods=("archetype",)
        )
        assert {row.dataset for row in rows} == {
            "sotab-27", "d4-20", "amstr-56", "pubchem-20",
        }
        by_dataset = {row.dataset: row for row in rows}
        assert by_dataset["sotab-27"].num_rule_labels == 5
        assert by_dataset["d4-20"].num_rule_labels == 9
        assert by_dataset["amstr-56"].num_rule_labels == 2
        assert by_dataset["pubchem-20"].num_rule_labels == 5
        for row in rows:
            assert 0.0 <= row.with_rules_f1 <= 100.0
            assert row.as_dict()["Dataset"] == row.dataset


@pytest.mark.slow
class TestTable5Structure:
    def test_all_methods_and_datasets_present(self):
        rows = table5_established.run_table5(n_columns=COLUMNS)
        datasets = {row.dataset for row in rows}
        methods = {row.method for row in rows}
        assert datasets == {"t2d", "efthymiou", "viznet-chorus"}
        assert methods == {
            "TURL-FT", "DoDuo-FT", "Sherlock-FT", "Chorus-ZS-GPT",
            "ArcheType-ZS-T5", "ArcheType-ZS-GPT4",
        }
        assert len(rows) == len(datasets) * len(methods)
        scores = {(row.dataset, row.method): row.score for row in rows}
        # The GPT-4 backbone beats the CHORUS-style zero-shot baseline.
        for dataset in datasets:
            assert scores[(dataset, "ArcheType-ZS-GPT4")] >= \
                scores[(dataset, "Chorus-ZS-GPT")] - 3.0


@pytest.mark.slow
class TestDistributionShift:
    def test_shift_rows_and_ordering(self):
        rows = shift.run_shift(n_columns=150)
        scores = {(row.trained_on, row.evaluated_on): row.micro_f1 for row in rows}
        assert set(scores) == {
            ("VizNet", "VizNet"), ("VizNet", "SOTAB-27"), ("SOTAB", "SOTAB-27"),
        }
        assert scores[("VizNet", "SOTAB-27")] < scores[("VizNet", "VizNet")]
        assert scores[("SOTAB", "SOTAB-27")] > scores[("VizNet", "SOTAB-27")]
