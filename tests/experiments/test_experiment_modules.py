"""Tests for the per-table/figure experiment modules.

These run each experiment at a small scale and assert structural properties
plus the qualitative shapes that must hold for the reproduction to be
meaningful (who wins, what degrades).  Shape assertions use generous margins
because the evaluation splits here are small.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig4_sampling,
    fig5_context_size,
    fig7_labelset,
    perclass,
    table1_cost,
    table6_prompts,
    table8_classnames,
)

COLUMNS = 80


class TestTable1Cost:
    def test_rows_and_monotonicity(self):
        rows = table1_cost.run_table1(n_columns=60)
        assert len(rows) == len(table1_cost.TABLE1_CONFIGURATIONS)
        by_key = {(r["Method"], r["# Smp."]): r for r in rows}
        # Cost grows with the number of samples per column.
        assert by_key[("column", 1000)]["App. USD Cost"] > by_key[("column", 10)]["App. USD Cost"]
        # Table-at-once with 10 samples is far more expensive than
        # column-at-once with 10 samples per prompt-token volume.
        assert by_key[("table", 10)]["% >1k"] > by_key[("column", 10)]["% >1k"]
        # Overflow percentages are nested: >16k implies >4k implies >1k.
        for row in rows:
            assert row["% >1k"] >= row["% >4k"] >= row["% >16k"]

    def test_thousand_samples_overflow_small_windows(self):
        rows = table1_cost.run_table1(n_columns=40)
        big = next(r for r in rows if r["# Smp."] == 1000)
        assert big["% >1k"] > 90.0


class TestTable6Prompts:
    def test_all_cells_present(self):
        cells = table6_prompts.run_table6(n_columns=COLUMNS, models=("t5", "gpt"))
        assert len(cells) == 6 * 2
        rows = table6_prompts.cells_as_rows(cells)
        assert len(rows) == 6
        best = table6_prompts.best_prompt_per_model(cells)
        assert set(best) == {"t5", "gpt"}

    def test_prompt_choice_matters(self):
        cells = table6_prompts.run_table6(n_columns=COLUMNS, models=("t5",))
        scores = [c.micro_f1 for c in cells]
        assert max(scores) - min(scores) > 1.0  # models are prompt sensitive


class TestFig4Sampling:
    def test_archetype_sampling_wins(self):
        cells = fig4_sampling.run_fig4(n_columns=200, models=("t5", "gpt"))
        by_pair = {(c.sampler, c.model): c.micro_f1 for c in cells}
        for model in ("t5", "gpt"):
            assert by_pair[("archetype", model)] >= by_pair[("srs", model)] - 1.0
            assert by_pair[("archetype", model)] >= by_pair[("firstk", model)] - 1.0
        # Averaged over architectures ArcheType sampling is strictly ahead.
        avg = lambda sampler: sum(by_pair[(sampler, m)] for m in ("t5", "gpt")) / 2
        assert avg("archetype") > avg("srs")
        assert avg("archetype") > avg("firstk")


class TestFig5ContextSize:
    def test_remapping_beats_noop_and_best_is_contains_resample(self):
        cells = fig5_context_size.run_fig5(n_columns=200)
        by_pair = {(c.remapper, c.sample_size): c.micro_f1 for c in cells}
        for phi in fig5_context_size.SAMPLE_SIZES:
            assert by_pair[("contains+resample", phi)] >= by_pair[("none", phi)]
        # Larger context helps on average.
        avg = lambda phi: sum(by_pair[(r, phi)] for r in fig5_context_size.REMAPPERS) / 4
        assert avg(10) >= avg(3) - 1.0


class TestFig7LabelSet:
    def test_larger_label_set_degrades_performance(self):
        cells = fig7_labelset.run_fig7(n_columns=150, models=("t5", "gpt"))
        by_pair = {(c.model, c.label_set_size): c.micro_f1 for c in cells}
        sizes = sorted({c.label_set_size for c in cells})
        small, large = sizes[0], sizes[-1]
        assert large == 91
        for model in ("t5", "gpt"):
            assert by_pair[(model, small)] > by_pair[(model, large)] + 5.0


class TestPerClass:
    def test_report_structure(self):
        report = perclass.run_per_class("d4-20", n_columns=COLUMNS, models=("gpt",))
        assert report.benchmark == "d4-20"
        rows = report.as_rows()
        assert len(rows) == len(report.class_frequency)
        assert all("gpt" in row for row in rows)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            perclass.run_per_class("t2d")

    def test_regex_classes_are_easy(self):
        report = perclass.run_per_class("d4-20", n_columns=200, models=("gpt",))
        accuracy = report.accuracy_by_model["gpt"]
        easy = [accuracy.get("school-dbn", 0.0), accuracy.get("month", 0.0)]
        assert min(easy) > 0.8


class TestTable8Classnames:
    def test_perturbations_change_some_classes(self):
        outcome = table8_classnames.run_table8(n_columns=150)
        rows = outcome.as_rows()
        assert len(rows) == 20
        changed = outcome.changed_classes(threshold=0.03)
        # Both perturbations must move at least one class (the paper's point:
        # sensitivity behaves like label noise).
        assert changed["shuffled"] or changed["set_b"]
