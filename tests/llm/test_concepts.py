"""Unit tests for label -> concept resolution."""

from __future__ import annotations

from repro.llm.concepts import DEFAULT_RESOLVER, LabelResolver, label_tokens, normalize_label


class TestNormalization:
    def test_normalize_label(self):
        assert normalize_label("  Journal ISSN! ") == "journal issn"
        assert normalize_label("person's full name") == "person s full name"

    def test_label_tokens_drop_stopwords(self):
        assert label_tokens("abbreviation of agency") == {"abbreviation", "agency"}
        assert "the" not in label_tokens("the state")


class TestResolution:
    def setup_method(self):
        self.resolver = LabelResolver()

    def test_exact_name_match(self):
        resolved = self.resolver.resolve("url")
        assert resolved.resolved and resolved.concept.name == "url"
        assert resolved.match_quality == 1.0

    def test_alias_match(self):
        resolved = self.resolver.resolve("streetaddress")
        assert resolved.concept.name == "street address"
        resolved = self.resolver.resolve("sports team")
        assert resolved.concept.name == "sportsteam"

    def test_parenthetical_labels(self):
        resolved = self.resolver.resolve(
            "smiles (simplified molecular input line entry system)"
        )
        assert resolved.concept.name == "smiles"

    def test_token_overlap_match(self):
        resolved = self.resolver.resolve("name of the newspaper or publication")
        assert resolved.resolved
        assert resolved.concept.name == "newspaper"

    def test_paper_specific_labels_resolve(self):
        cases = {
            "abbreviation of agency": "nyc agency abbreviation",
            "nyc agency name": "nyc agency",
            "person's full name": "person full name",
            "abstract for patent": "patent abstract",
            "journal issn": "issn",
            "region in staten island": "region in staten island",
            "disease alternative label": "disease",
        }
        for label, expected in cases.items():
            resolved = self.resolver.resolve(label)
            assert resolved.resolved, label
            assert resolved.concept.name == expected, label

    def test_unknown_label_is_unresolved_but_usable(self):
        resolved = self.resolver.resolve("zorblat frequency")
        assert not resolved.resolved
        assert resolved.match_quality == 0.0
        assert resolved.label == "zorblat frequency"

    def test_empty_label(self):
        assert not self.resolver.resolve("  ").resolved

    def test_resolution_is_cached_and_stable(self):
        first = self.resolver.resolve("url")
        second = self.resolver.resolve("url")
        assert first is second  # lru_cache returns the same object

    def test_resolve_all(self):
        results = self.resolver.resolve_all(["url", "state", "zorblat"])
        assert len(results) == 3
        assert results[0].resolved and not results[2].resolved

    def test_default_resolver_is_shared_instance(self):
        assert isinstance(DEFAULT_RESOLVER, LabelResolver)
        assert DEFAULT_RESOLVER.resolve("url").resolved
