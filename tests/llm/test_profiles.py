"""Unit tests for model profiles and the model registry."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownModelError
from repro.llm.base import GenerationParams, LanguageModel
from repro.llm.profiles import PROFILES, get_profile, list_profiles
from repro.llm.registry import get_model, list_models, register_model
from repro.llm.simulated import SimulatedLLM


class TestProfiles:
    def test_all_profiles_have_sane_knobs(self):
        for profile in PROFILES.values():
            assert 0.0 < profile.base_skill <= 1.0
            assert profile.knowledge_noise > 0.0
            assert 0.0 <= profile.out_of_label_rate <= 1.0
            assert profile.context_window > 0

    def test_aliases_resolve(self):
        assert get_profile("gpt").name == "gpt-3.5"
        assert get_profile("GPT-3.5-Turbo").name == "gpt-3.5"
        assert get_profile("flan-t5").name == "t5"
        assert get_profile("llama-2").name == "llama-7b"

    def test_unknown_profile_raises(self):
        with pytest.raises(UnknownModelError):
            get_profile("mystery-model")

    def test_relative_ordering_of_skill(self):
        # GPT-4 > GPT-3.5 >= T5 >= UL2 > OPT-IML > LLAMA zero-shot.
        skills = {name: profile.base_skill for name, profile in PROFILES.items()}
        assert skills["gpt-4"] > skills["gpt-3.5"]
        assert skills["gpt-3.5"] >= skills["t5"] >= skills["ul2"]
        assert skills["ul2"] > skills["opt-iml"] > skills["llama-7b"]

    def test_small_decoder_models_answer_off_label_more_often(self):
        assert (
            PROFILES["llama-7b"].out_of_label_rate
            > PROFILES["t5"].out_of_label_rate
        )

    def test_style_modifier_defaults_to_zero(self):
        assert get_profile("t5").style_modifier("Z") == 0.0

    def test_list_profiles_sorted(self):
        assert list_profiles() == sorted(list_profiles())


class TestRegistry:
    def test_get_model_returns_simulator(self):
        model = get_model("t5")
        assert isinstance(model, SimulatedLLM)
        assert model.profile.name == "t5"

    def test_get_model_unknown_name(self):
        with pytest.raises(UnknownModelError):
            get_model("gpt-17")

    def test_list_models_includes_builtins(self):
        names = list_models()
        assert "t5" in names and "gpt-3.5" in names

    def test_register_custom_model(self):
        class FixedModel(LanguageModel):
            name = "fixed"

            def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
                return "person"

        register_model("fixed-test-model", lambda seed: FixedModel())
        try:
            model = get_model("fixed-test-model")
            assert model.generate("anything") == "person"
            assert "fixed-test-model" in list_models()
        finally:
            # Keep the registry clean for other tests.
            from repro.llm import registry

            registry._CUSTOM_FACTORIES.pop("fixed-test-model", None)
