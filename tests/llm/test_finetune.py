"""Unit tests for the fine-tuned (prototype) LLAMA stand-in."""

from __future__ import annotations

import pytest

from repro.core.serialization import PromptSerializer, PromptStyle
from repro.llm.finetune import FineTunedLLM, FineTuneExample


def _prompt(values: list[str]) -> str:
    serializer = PromptSerializer(style=PromptStyle.FINETUNED, context_window=2048)
    return serializer.serialize(values, ["unused"]).text


@pytest.fixture()
def training_examples() -> list[FineTuneExample]:
    examples = []
    url_values = [
        ["http://example.com/a", "http://example.org/b", "http://x.net/c"],
        ["http://shop.example.org/1", "http://shop.example.org/2"],
    ]
    state_values = [
        ["Alaska", "Colorado", "Kentucky"],
        ["Texas", "Ohio", "Maine", "Utah"],
    ]
    phone_values = [
        ["(212) 555-0100", "212-555-0101"],
        ["+1 646 555 0199", "(718) 555-0110"],
    ]
    for values in url_values:
        examples.append(FineTuneExample(prompt=_prompt(values), label="url"))
    for values in state_values:
        examples.append(FineTuneExample(prompt=_prompt(values), label="addressregion"))
    for values in phone_values:
        examples.append(FineTuneExample(prompt=_prompt(values), label="telephone"))
    return examples


class TestFineTuning:
    def test_unfitted_model_falls_back_to_zero_shot(self):
        model = FineTunedLLM()
        assert not model.is_fitted
        answer = model.generate(_prompt(["http://example.com/a", "http://b.org/x"]))
        assert isinstance(answer, str) and answer

    def test_fit_requires_examples(self):
        with pytest.raises(ValueError):
            FineTunedLLM().fit([])

    def test_fit_reports_epochs_and_labels(self, training_examples):
        model = FineTunedLLM()
        report = model.fit(training_examples, epochs=3)
        assert report.epochs == 3
        assert report.n_examples == len(training_examples)
        assert set(report.labels) == {"url", "addressregion", "telephone"}
        assert len(report.losses) == 3
        assert model.is_fitted
        assert set(model.labels) == set(report.labels)

    def test_losses_do_not_increase(self, training_examples):
        report = FineTunedLLM().fit(training_examples, epochs=4)
        assert report.losses[-1] <= report.losses[0] + 1e-9

    def test_predictions_match_training_distribution(self, training_examples):
        model = FineTunedLLM()
        model.fit(training_examples)
        assert model.generate(_prompt(["http://new.example.com/page", "http://other.org/x"])) \
            .startswith("url")
        assert model.generate(_prompt(["Nevada", "Vermont", "Idaho"])).startswith("addressregion")
        assert model.generate(_prompt(["(917) 555-0042", "646-555-0123"])).startswith("telephone")

    def test_generation_is_deterministic(self, training_examples):
        model = FineTunedLLM(seed=3)
        model.fit(training_examples)
        prompt = _prompt(["Nevada", "Vermont"])
        assert model.generate(prompt) == model.generate(prompt)

    def test_blending_can_be_disabled(self, training_examples):
        model = FineTunedLLM(blend_world_knowledge=0.0)
        model.fit(training_examples)
        answer = model.generate(_prompt(["http://example.com/q"]))
        assert answer.startswith("url")
