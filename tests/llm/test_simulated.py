"""Unit tests for the simulated LLM backend."""

from __future__ import annotations

import pytest

from repro.core.serialization import PromptSerializer, PromptStyle
from repro.llm.base import GenerationParams
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedLLM

LABELS = ["state", "person", "url", "number", "text", "organization"]


def make_prompt(values, labels=LABELS, style=PromptStyle.S) -> str:
    return PromptSerializer(style=style, context_window=4096).serialize(values, labels).text


class TestGeneration:
    def test_obvious_state_column_answered_correctly(self):
        model = SimulatedLLM("gpt")
        prompt = make_prompt(["Alaska", "Colorado", "Kentucky", "Nevada", "Texas"])
        assert "state" in model.generate(prompt).lower()

    def test_obvious_url_column_answered_correctly(self):
        model = SimulatedLLM("t5")
        prompt = make_prompt(["http://example.com/a", "http://example.org/b"])
        assert "url" in model.generate(prompt).lower()

    def test_generation_is_deterministic(self):
        prompt = make_prompt(["Alaska", "Texas", "Maine"])
        a = SimulatedLLM("ul2").generate(prompt)
        b = SimulatedLLM("ul2").generate(prompt)
        assert a == b

    def test_different_resample_params_can_change_output(self):
        model = SimulatedLLM("llama")
        prompt = make_prompt(["n/a", "-", "unknown", "0"])
        base = GenerationParams()
        outputs = {model.generate(prompt, base.permuted(k)) for k in range(6)}
        assert len(outputs) >= 2  # permuted hyperparameters diversify answers

    def test_prompt_without_options_returns_free_form_guess(self):
        model = SimulatedLLM("gpt")
        prompt = PromptSerializer(style=PromptStyle.FINETUNED).serialize(
            ["http://example.com/a", "http://example.org/b"], LABELS
        ).text
        answer = model.generate(prompt)
        assert "url" in answer.lower()

    def test_seed_changes_output_stream(self):
        prompt = make_prompt(["n/a", "-", "maybe", "unknown", "x"])
        a = SimulatedLLM("llama", seed=0).generate(prompt)
        b = SimulatedLLM("llama", seed=123).generate(prompt)
        # Hard, ambiguous columns are where stochasticity shows up; the seeds
        # need not disagree on every prompt but the model must accept them.
        assert isinstance(a, str) and isinstance(b, str)

    def test_accepts_profile_instances_and_names(self):
        assert SimulatedLLM(get_profile("t5")).profile.name == "t5"
        assert SimulatedLLM("gpt").profile.name == "gpt-3.5"

    def test_model_metadata_follows_profile(self):
        model = SimulatedLLM("gpt")
        assert model.open_source is False
        assert model.context_window == 16384
        llama = SimulatedLLM("llama")
        assert llama.open_source is True


class TestScoring:
    def test_explain_scores_every_option(self):
        model = SimulatedLLM("gpt")
        prompt = make_prompt(["Alaska", "Texas", "Ohio"])
        scores = model.explain(prompt)
        assert len(scores) == len(LABELS)
        by_label = {s.label: s for s in scores}
        assert by_label["state"].evidence > by_label["url"].evidence

    def test_ambiguous_columns_have_smaller_decision_margins(self):
        """The degenerate column of Section 3.2 leaves the model no way to
        separate the candidate labels, so its decision margin collapses —
        which is what drives the elevated out-of-label rate."""
        model = SimulatedLLM("t5")
        ambiguous = make_prompt(["0", "0", "0"], labels=["number", "integer", "quantity"])
        clear = make_prompt(["http://a.com", "http://b.org"], labels=["url", "person"])

        def margin(prompt: str) -> float:
            totals = sorted((s.total for s in model.explain(prompt)), reverse=True)
            return totals[0] - totals[1]

        assert margin(clear) > margin(ambiguous)

    def test_some_generations_fall_outside_the_label_set(self):
        """Out-of-label answers must occur (they are what remapping corrects)."""
        model = SimulatedLLM("llama")
        prompt = make_prompt(["0", "0", "0"], labels=["number", "integer", "quantity"])
        answers = {
            model.generate(prompt, GenerationParams(seed=k)) for k in range(20)
        }
        assert any(a.lower() not in {"number", "integer", "quantity"} for a in answers)

    def test_clutter_markers_detected(self):
        model = SimulatedLLM("ul2")
        from repro.llm.prompt_parsing import parse_prompt

        clean = parse_prompt(make_prompt(["Alaska", "Texas"]))
        cluttered = parse_prompt(
            make_prompt(["TABLE NAME: x.csv", "Alaska", "std: 4.2", "col1: 99"])
        )
        assert model._clutter_level(cluttered) > model._clutter_level(clean)

    def test_label_size_increases_noise_scale(self):
        model = SimulatedLLM("t5")
        from repro.llm.prompt_parsing import parse_prompt

        parsed = parse_prompt(make_prompt(["Alaska", "Texas"]))
        params = GenerationParams()
        small = model._noise_scale(parsed, params, n_options=10)
        large = model._noise_scale(parsed, params, n_options=91)
        assert large > small

    def test_temperature_increases_noise_scale(self):
        model = SimulatedLLM("t5")
        from repro.llm.prompt_parsing import parse_prompt

        parsed = parse_prompt(make_prompt(["Alaska", "Texas"]))
        cold = model._noise_scale(parsed, GenerationParams(temperature=0.0), 10)
        hot = model._noise_scale(parsed, GenerationParams(temperature=1.5), 10)
        assert hot > cold
