"""Unit tests for token counting and the Table 1 cost model."""

from __future__ import annotations

import pytest

from repro.llm.tokenizer import CostModel, SimpleTokenizer, batch_token_counts


class TestSimpleTokenizer:
    def setup_method(self):
        self.tokenizer = SimpleTokenizer()

    def test_empty_string_has_no_tokens(self):
        assert self.tokenizer.count("") == 0

    def test_short_words_are_single_tokens(self):
        assert self.tokenizer.count("the cat") == 2

    def test_long_words_fragment(self):
        assert self.tokenizer.count("internationalization") > 1

    def test_digits_fragment_faster_than_letters(self):
        digits = self.tokenizer.count("123456789012")
        letters = self.tokenizer.count("abcdefghijkl")
        assert digits >= letters

    def test_non_ascii_charged_extra(self):
        assert self.tokenizer.count("café") > self.tokenizer.count("cafe")

    def test_punctuation_counts_as_tokens(self):
        assert self.tokenizer.count("a,b") == 3

    def test_count_monotone_under_concatenation(self):
        a, b = "hello world", "12345 foo"
        assert self.tokenizer.count(a + " " + b) >= max(
            self.tokenizer.count(a), self.tokenizer.count(b)
        )

    def test_truncate_respects_budget(self):
        text = " ".join(f"word{i}" for i in range(200))
        truncated = self.tokenizer.truncate(text, 30)
        assert self.tokenizer.count(truncated) <= 30
        assert truncated.startswith("word0")

    def test_truncate_noop_when_within_budget(self):
        assert self.tokenizer.truncate("short text", 100) == "short text"

    def test_truncate_zero_budget(self):
        assert self.tokenizer.truncate("anything", 0) == ""

    def test_batch_token_counts(self):
        counts = batch_token_counts(self.tokenizer, ["a", "bb cc"])
        assert counts == [1, 2]


class TestCostModel:
    def test_prompt_cost_scales_with_length(self):
        model = CostModel()
        assert model.prompt_cost("word " * 1000) > model.prompt_cost("word")

    def test_estimate_reports_overflow_percentages(self):
        model = CostModel()
        prompts = ["short prompt", "word " * 2000]
        estimate = model.estimate(prompts, method="column", samples_per_column=5)
        assert estimate.pct_over_1k == pytest.approx(50.0)
        assert estimate.pct_over_16k == 0.0
        assert estimate.n_prompts == 2
        assert estimate.usd_cost > 0

    def test_estimate_scaled_extrapolates_linearly(self):
        model = CostModel()
        prompts = ["word " * 50] * 10
        base = model.estimate(prompts, "column", 5)
        scaled = model.estimate_scaled(prompts, "column", 5, population_size=100)
        assert scaled.usd_cost == pytest.approx(base.usd_cost * 10)
        assert scaled.n_prompts == 100
        assert scaled.pct_over_1k == base.pct_over_1k

    def test_estimate_handles_empty_prompt_list(self):
        estimate = CostModel().estimate([], "column", 5)
        assert estimate.usd_cost == 0.0

    def test_as_row_has_table1_columns(self):
        estimate = CostModel().estimate(["x"], "column", 3)
        row = estimate.as_row()
        assert set(row) == {"Method", "# Smp.", "% >1k", "% >4k", "% >16k", "App. USD Cost"}
