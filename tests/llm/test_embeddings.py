"""Unit tests for the hashing embedder used by similarity remapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.embeddings import DEFAULT_EMBEDDER, HashingEmbedder


class TestEmbedding:
    def setup_method(self):
        self.embedder = HashingEmbedder()

    def test_vectors_are_unit_norm(self):
        vector = self.embedder.embed("column type annotation")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_embeds_to_zero_vector(self):
        assert np.allclose(self.embedder.embed(""), 0.0)

    def test_embeddings_are_deterministic(self):
        a = self.embedder.embed("semantic type")
        b = HashingEmbedder().embed("semantic type")
        assert np.allclose(a, b)

    def test_identical_strings_have_similarity_one(self):
        assert self.embedder.similarity("state", "state") == pytest.approx(1.0)

    def test_related_strings_are_closer_than_unrelated(self):
        related = self.embedder.similarity("high school", "educational organization")
        unrelated = self.embedder.similarity("high school", "molecular formula")
        assert related > unrelated

    def test_synonym_groups_pull_strings_together(self):
        assert self.embedder.similarity("company", "business corporation") > 0.2
        assert self.embedder.similarity("phone", "telephone") > 0.2

    def test_embed_many_shapes(self):
        matrix = self.embedder.embed_many(["a", "b", "c"])
        assert matrix.shape == (3, self.embedder.dimension)
        assert self.embedder.embed_many([]).shape == (0, self.embedder.dimension)

    def test_most_similar_returns_best_index(self):
        labels = ["person", "url", "number"]
        index, similarity = self.embedder.most_similar("a web link to the page", labels)
        assert labels[index] == "url"
        assert -1.0 <= similarity <= 1.0

    def test_most_similar_requires_candidates(self):
        with pytest.raises(ValueError):
            self.embedder.most_similar("query", [])

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dimension=0)

    def test_default_embedder_exists(self):
        assert DEFAULT_EMBEDDER.dimension > 0
