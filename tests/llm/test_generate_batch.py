"""Batch generation must be completion-for-completion identical to the loop."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ArcheType, ArcheTypeConfig
from repro.core.serialization import PromptSerializer, PromptStyle
from repro.llm.base import GenerationParams, LanguageModel, broadcast_params
from repro.llm.finetune import FineTuneExample, FineTunedLLM
from repro.llm.simulated import SimulatedLLM

LABELS = ["state", "person", "url", "number", "text"]

SAMPLES = [
    ("Alaska", "Colorado", "Kentucky", "Nevada", "Texas"),
    ("http://a.com/x", "http://b.org/y", "http://c.net/z"),
    ("550", "608", "600", "520", "595"),
    ("Alice Smith", "Bob Jones", "Carol White"),
]


def _prompts() -> list[str]:
    serializer = PromptSerializer(style=PromptStyle.S, context_window=2048)
    return [serializer.serialize(list(values), LABELS).text for values in SAMPLES]


class TestBroadcastParams:
    def test_none_broadcasts(self):
        assert broadcast_params(["a", "b"], None) == [None, None]

    def test_single_params_broadcasts(self):
        params = GenerationParams(temperature=0.7)
        assert broadcast_params(["a", "b"], params) == [params, params]

    def test_sequence_passes_through(self):
        per_prompt = [GenerationParams(), None]
        assert broadcast_params(["a", "b"], per_prompt) == per_prompt

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            broadcast_params(["a"], [GenerationParams(), GenerationParams()])


class TestDefaultLoopImplementation:
    def test_base_class_loops_generate(self):
        class Upper(LanguageModel):
            name = "upper"

            def generate(self, prompt, params=None):
                return prompt.upper()

        model = Upper()
        assert model.generate_batch(["ab", "cd"]) == ["AB", "CD"]


class TestSimulatedBatch:
    def test_batch_matches_loop(self):
        prompts = _prompts()
        model = SimulatedLLM("gpt-3.5", seed=3)
        loop = [model.generate(p) for p in prompts]
        assert model.generate_batch(prompts) == loop

    def test_batch_with_duplicates_and_params(self):
        prompts = _prompts()
        doubled = prompts + prompts
        params = [GenerationParams().permuted(k % 3) for k in range(len(doubled))]
        model = SimulatedLLM("t5", seed=1)
        loop = [model.generate(p, pp) for p, pp in zip(doubled, params)]
        assert model.generate_batch(doubled, params) == loop


class TestFineTunedBatch:
    def _fitted_model(self) -> FineTunedLLM:
        model = FineTunedLLM(seed=2)
        serializer = PromptSerializer(style=PromptStyle.FINETUNED, context_window=2048)
        examples = [
            FineTuneExample(prompt=serializer.serialize(list(values), []).text, label=label)
            for values, label in zip(SAMPLES, ["state", "url", "number", "person"])
        ]
        model.fit(examples)
        return model

    def test_unfitted_batch_delegates_to_zero_shot(self):
        prompts = _prompts()
        model = FineTunedLLM(seed=4)
        assert model.generate_batch(prompts) == [model.generate(p) for p in prompts]

    def test_fitted_batch_matches_loop(self):
        prompts = _prompts()
        model = self._fitted_model()
        loop = [model.generate(p) for p in prompts]
        assert model.generate_batch(prompts) == loop

    def test_fitted_batch_with_duplicates(self):
        prompts = _prompts() * 3
        model = self._fitted_model()
        loop = [model.generate(p) for p in prompts]
        assert model.generate_batch(prompts) == loop
