"""Unit tests for the world-knowledge concept detectors."""

from __future__ import annotations

import pytest

from repro.llm.knowledge import CONCEPTS, alias_index, get_concept, score_concept


def score(concept_name: str, values: list[str]) -> float:
    concept = get_concept(concept_name)
    assert concept is not None, f"concept {concept_name} missing"
    return score_concept(concept, values)


class TestStructuralDetectors:
    def test_url(self):
        assert score("url", ["http://example.com/a", "https://x.org/b?c=1"]) == 1.0
        assert score("url", ["not a url"]) == 0.0

    def test_email(self):
        assert score("email", ["jane.doe@example.com"]) == 1.0
        assert score("email", ["jane.doe at example"]) == 0.0

    def test_zipcode_and_phone(self):
        assert score("zipcode", ["10027", "11201-1234"]) == 1.0
        assert score("telephone", ["(212) 555-0173", "212-555-0199"]) == 1.0

    def test_dates_and_times(self):
        assert score("date", ["2020-01-31", "3/14/2021", "July 4, 1999"]) == 1.0
        assert score("time", ["10:35 PM", "23:59:01"]) == 1.0

    def test_identifiers(self):
        assert score("issn", ["1234-5678"]) == 1.0
        assert score("md5", ["d41d8cd98f00b204e9800998ecf8427e"]) == 1.0
        assert score("inchi", ["InChI=1S/C9H8O4/c1-6(10)13-8"]) == 1.0

    def test_smiles_vs_inchi_disambiguation(self):
        assert score("smiles", ["CC(=O)Oc1ccccc1C(=O)O"]) > 0.5
        assert score("smiles", ["InChI=1S/C9H8O4"]) == 0.0

    def test_molecular_formula(self):
        assert score("molecular formula", ["C10H30Cl4O2Si4", "C43H75NO10S"]) > 0.8
        assert score("molecular formula", ["hello world"]) == 0.0

    def test_street_address(self):
        assert score("street address", ["123 Main Street", "4 Elm Avenue"]) == 1.0

    def test_numeric_family(self):
        assert score("number", ["12", "3.5", "1,200"]) == 1.0
        assert score("age", ["34", "7", "99"]) > 0.8
        assert score("weight", ["550mm", "3kg"]) == 1.0
        assert score("price", ["$4.99", "12.50 USD"]) == 1.0


class TestLexiconDetectors:
    def test_states_and_countries(self):
        assert score("us-state", ["Alaska", "New Jersey"]) == 1.0
        assert score("country", ["Brazil", "Japan"]) == 1.0

    def test_nyc_lexicons(self):
        assert score("borough", ["Brooklyn", "Queens"]) == 1.0
        assert score("nyc agency", ["Department of Education (DOE)"]) == 1.0
        assert score("region in bronx", ["Bathgate", "Mott Haven"]) == 1.0
        assert score("region in bronx", ["Astoria"]) == 0.0

    def test_school_names(self):
        assert score("school name", ["P.S. 057 Hubert H. Humphrey", "Stuyvesant High School"]) > 0.8

    def test_people(self):
        assert score("person full name", ["Mary Johnson", "Robert Garcia"]) == 1.0
        assert score("person last name", ["Nguyen", "Smith"]) == 1.0
        assert score("person first name", ["Jennifer", "David Q."]) == 1.0

    def test_newspaper_and_articles(self):
        assert score("newspaper", ["The Nome nugget.", "The Arizona champion."]) == 1.0
        long_article = (
            "The city council met last evening to discuss the proposed ordinance. "
            "A large crowd gathered at the opera house for the benefit concert."
        )
        assert score("article", [long_article]) > 0.5
        assert score("headline", ["WHEAT PRICES RISE SHARPLY"]) == 1.0

    def test_chemistry_domain(self):
        assert score("chemical", ["ibuprofen", "caffeine"]) == 1.0
        assert score("disease", ["Type 2 diabetes mellitus", "Crohn disease"]) == 1.0
        assert score("taxonomy", ["Homo sapiens", "Mus musculus"]) == 1.0

    def test_empty_values_score_zero(self):
        concept = get_concept("url")
        assert score_concept(concept, []) == 0.0
        assert score_concept(concept, ["", "  "]) == 0.0


class TestRegistry:
    def test_lookup_is_case_insensitive(self):
        assert get_concept("URL") is get_concept("url")
        assert get_concept("does-not-exist") is None

    def test_alias_index_covers_all_concepts(self):
        index = alias_index()
        for name in CONCEPTS:
            assert index[name] == name
        # A known alias resolves to its canonical concept.
        assert index["sports team"] == "sportsteam"

    def test_all_concepts_clamp_scores_to_unit_interval(self):
        samples = ["Alaska", "http://example.com", "42", "", "InChI=1S/C2H6O"]
        for concept in CONCEPTS.values():
            for value in samples:
                assert 0.0 <= concept.score_value(value) <= 1.0

    def test_specificity_is_positive(self):
        assert all(c.specificity > 0 for c in CONCEPTS.values())
