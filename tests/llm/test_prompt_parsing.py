"""Unit tests for prompt parsing: the simulator must recover what the
serializer wrote, for every prompt style."""

from __future__ import annotations

import pytest

from repro.core.serialization import PromptSerializer, PromptStyle
from repro.llm.prompt_parsing import parse_prompt

LABELS = ["state", "person", "url", "number"]
CONTEXT = ["Alaska", "Colorado", "Kentucky"]


class TestRoundTrip:
    @pytest.mark.parametrize("style", PromptStyle.zero_shot_styles())
    def test_parser_recovers_context_and_options(self, style):
        serializer = PromptSerializer(style=style, context_window=4096)
        prompt = serializer.serialize(CONTEXT, LABELS)
        parsed = parse_prompt(prompt.text)
        assert parsed.style_letter == style.value
        assert parsed.has_options
        assert set(parsed.options) == set(LABELS)
        assert set(CONTEXT) <= set(parsed.context_values)

    def test_finetuned_prompt_has_no_options(self):
        serializer = PromptSerializer(style=PromptStyle.FINETUNED)
        prompt = serializer.serialize(CONTEXT, LABELS)
        parsed = parse_prompt(prompt.text)
        assert parsed.style_letter == "FT"
        assert not parsed.has_options
        assert "Alaska" in parsed.context_values

    def test_unknown_format_falls_back_gracefully(self):
        parsed = parse_prompt("What type is this column: a, b, c?")
        assert parsed.style_letter == "?"
        assert not parsed.has_options
        assert parsed.context_values  # best-effort extraction still yields values

    def test_options_preserve_serialized_order(self):
        serializer = PromptSerializer(style=PromptStyle.B, sort_labels=True)
        prompt = serializer.serialize(CONTEXT, ["zebra", "apple", "mango"])
        parsed = parse_prompt(prompt.text)
        assert list(parsed.options) == ["apple", "mango", "zebra"]

    def test_truncated_prompt_still_parses(self):
        serializer = PromptSerializer(style=PromptStyle.B, context_window=150)
        long_context = [f"a rather long cell value number {i}" for i in range(100)]
        prompt = serializer.serialize(long_context, LABELS)
        assert prompt.truncated
        parsed = parse_prompt(prompt.text)
        assert parsed.has_options
        assert set(parsed.options) == set(LABELS)
