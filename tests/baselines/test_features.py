"""Unit tests for the classical baselines' feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.features import FEATURE_DIMENSION, column_features, features_matrix


class TestColumnFeatures:
    def test_fixed_dimension(self):
        assert column_features(["a", "b"]).shape == (FEATURE_DIMENSION,)

    def test_empty_column_is_zero_vector(self):
        assert np.allclose(column_features(["", "  "]), 0.0)
        assert np.allclose(column_features([]), 0.0)

    def test_numeric_fraction_feature(self):
        numeric = column_features(["1", "2", "3"])
        text = column_features(["a", "b", "c"])
        # Feature index 10 is the numeric fraction.
        assert numeric[10] == pytest.approx(1.0)
        assert text[10] == pytest.approx(0.0)

    def test_url_fraction_feature(self):
        urls = column_features(["http://a.com", "https://b.org"])
        assert urls[11] == pytest.approx(1.0)

    def test_ngram_block_is_normalised(self):
        vector = column_features(["hello world", "hello there"])
        assert np.linalg.norm(vector[18:]) == pytest.approx(1.0)

    def test_features_are_deterministic(self):
        values = ["Alaska", "Colorado", "Kentucky"]
        assert np.allclose(column_features(values), column_features(values))

    def test_different_types_produce_different_features(self):
        urls = column_features(["http://a.com/x", "http://b.org/y"])
        states = column_features(["Alaska", "Colorado"])
        assert not np.allclose(urls, states)

    def test_features_matrix_shape(self):
        matrix = features_matrix([["a"], ["b", "c"], ["1", "2"]])
        assert matrix.shape == (3, FEATURE_DIMENSION)
        assert features_matrix([]).shape == (0, FEATURE_DIMENSION)
