"""Unit tests for the simulated DoDuo / TURL / Sherlock baselines."""

from __future__ import annotations

import pytest

from repro.baselines.classical import ClassicalCTAModel, DoDuoModel, SherlockModel, TURLModel
from repro.datasets.registry import load_benchmark
from repro.eval.metrics import weighted_f1
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def viznet():
    return load_benchmark("viznet-chorus", n_columns=150, seed=3)


class TestClassicalModel:
    def test_unfitted_model_refuses_to_predict(self):
        with pytest.raises(ConfigurationError):
            DoDuoModel().predict_column(["a", "b"])

    def test_fit_requires_data(self):
        with pytest.raises(ConfigurationError):
            DoDuoModel().fit([])

    def test_fit_predict_round_trip(self, viznet):
        model = DoDuoModel().fit(viznet.train_columns)
        assert model.is_fitted
        predictions = model.predict(viznet.columns)
        assert len(predictions) == len(viznet.columns)
        assert set(predictions) <= set(viznet.label_set)

    def test_in_distribution_accuracy_is_high(self, viznet):
        model = DoDuoModel().fit(viznet.train_columns)
        predictions = model.predict(viznet.columns)
        truth = [bc.label for bc in viznet.columns]
        assert weighted_f1(truth, predictions) > 0.55

    def test_doduo_beats_turl_in_distribution(self, viznet):
        truth = [bc.label for bc in viznet.columns]
        doduo = DoDuoModel().fit(viznet.train_columns).predict(viznet.columns)
        turl = TURLModel().fit(viznet.train_columns).predict(viznet.columns)
        assert weighted_f1(truth, doduo) >= weighted_f1(truth, turl) - 0.02

    def test_sherlock_uses_only_dense_features(self):
        model = SherlockModel()
        assert model.feature_mask is not None
        assert model.feature_mask[:18].sum() == 18
        assert model.feature_mask[18:].sum() == 0

    def test_label_map_applied_on_benchmark_prediction(self, viznet):
        model = DoDuoModel().fit(viznet.train_columns)
        mapped = model.predict_benchmark(viznet, label_map={l: "X" for l in viznet.label_set})
        assert set(mapped) == {"X"}

    def test_distribution_shift_degrades_accuracy(self, viznet):
        """A model trained on shifted VizNet formatting loses accuracy on SOTAB."""
        from repro.datasets.established import VIZNET_TO_SOTAB27

        sotab = load_benchmark("sotab-27", n_columns=150, seed=3)
        model = DoDuoModel().fit(viznet.train_columns)

        in_dist = weighted_f1(
            [bc.label for bc in viznet.columns], model.predict(viznet.columns)
        )
        shifted_predictions = model.predict_benchmark(sotab, label_map=VIZNET_TO_SOTAB27)
        out_dist = weighted_f1([bc.label for bc in sotab.columns], shifted_predictions)
        assert out_dist < in_dist - 0.15
