"""Unit tests for the zero-shot method factories (ArcheType, C-, K-Baseline)."""

from __future__ import annotations

import pytest

from repro.baselines.llm_baselines import (
    build_archetype_method,
    build_c_baseline,
    build_k_baseline,
    get_zero_shot_method,
)
from repro.core.sampling import ArcheTypeSampler, FirstKSampler, SimpleRandomSampler
from repro.core.serialization import PromptStyle
from repro.exceptions import ConfigurationError


class TestFactories:
    def test_archetype_method_configuration(self, d4_small):
        annotator = build_archetype_method(d4_small, model="t5", use_rules=True)
        assert isinstance(annotator.sampler, ArcheTypeSampler)
        assert annotator.remapper.name == "contains+resample"
        assert annotator.config.ruleset is not None
        assert annotator.label_set == d4_small.label_set

    def test_c_baseline_configuration(self, d4_small):
        annotator = build_c_baseline(d4_small, model="t5")
        assert isinstance(annotator.sampler, SimpleRandomSampler)
        assert annotator.serializer.style is PromptStyle.C
        assert annotator.remapper.name == "similarity"
        assert annotator.config.ruleset is None

    def test_k_baseline_configuration(self, d4_small):
        annotator = build_k_baseline(d4_small, model="gpt")
        assert isinstance(annotator.sampler, FirstKSampler)
        assert annotator.serializer.style is PromptStyle.K
        assert annotator.remapper.name == "none"

    def test_archetype_prompt_style_follows_architecture(self, d4_small):
        t5 = build_archetype_method(d4_small, model="t5")
        gpt = build_archetype_method(d4_small, model="gpt")
        assert t5.serializer.style is PromptStyle.K
        assert gpt.serializer.style is PromptStyle.S

    def test_explicit_prompt_style_override(self, d4_small):
        annotator = build_archetype_method(d4_small, model="t5", prompt_style=PromptStyle.N)
        assert annotator.serializer.style is PromptStyle.N

    def test_get_zero_shot_method_dispatch(self, d4_small):
        for name in ("archetype", "c-baseline", "k-baseline"):
            annotator = get_zero_shot_method(name, d4_small, model="t5")
            assert annotator.label_set == d4_small.label_set

    def test_get_zero_shot_method_unknown(self, d4_small):
        with pytest.raises(ConfigurationError):
            get_zero_shot_method("chorus-original", d4_small)

    def test_rules_only_attach_when_requested(self, pubchem_small):
        with_rules = build_archetype_method(pubchem_small, use_rules=True)
        without_rules = build_archetype_method(pubchem_small, use_rules=False)
        assert with_rules.config.ruleset is not None
        assert without_rules.config.ruleset is None

    def test_amstr_uses_label_containment_importance(self, amstr_small):
        annotator = build_archetype_method(amstr_small, model="t5")
        # The importance function is baked into the sampler; verify it boosts
        # values containing a state name from the label set.
        sampler = annotator.sampler
        assert isinstance(sampler, ArcheTypeSampler)
        assert sampler.importance("HARRISBURG, PENNSYLVANIA, Feb. 6.-Council met") == 1.0
        assert sampler.importance("the council met last evening") == pytest.approx(0.1)
