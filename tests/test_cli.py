"""Tests for the command-line interface."""

from __future__ import annotations

import csv
from pathlib import Path

import pytest

from repro.cli import build_parser, main, read_csv_table


@pytest.fixture()
def sample_csv(tmp_path: Path) -> Path:
    path = tmp_path / "contacts.csv"
    rows = [
        ["state", "website", "phone"],
        ["Alaska", "http://a.example.com/x", "(212) 555-0100"],
        ["Texas", "http://b.example.org/y", "646-555-0101"],
        ["Ohio", "http://c.example.net/z", "718-555-0102"],
        ["Maine", "http://d.example.io/w", "+1 917 555 0103"],
    ]
    with path.open("w", newline="", encoding="utf-8") as handle:
        csv.writer(handle).writerows(rows)
    return path


class TestCsvLoading:
    def test_read_csv_with_header(self, sample_csv):
        table = read_csv_table(sample_csv)
        assert len(table) == 3
        assert table.column_by_name("state").values[0] == "Alaska"
        assert table.n_rows == 4

    def test_read_csv_without_header(self, sample_csv):
        table = read_csv_table(sample_csv, has_header=False)
        assert table.n_rows == 5
        assert table[0].values[0] == "state"

    def test_max_rows(self, sample_csv):
        table = read_csv_table(sample_csv, max_rows=2)
        assert table.n_rows == 2

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        assert len(read_csv_table(empty)) == 0


class TestAnnotateCommand:
    def test_annotate_prints_predictions(self, sample_csv, capsys):
        exit_code = main([
            "annotate", str(sample_csv),
            "--labels", "state,url,telephone,person",
            "--model", "gpt",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "state" in captured
        assert "url" in captured
        assert "telephone" in captured

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        exit_code = main([
            "annotate", str(tmp_path / "nope.csv"), "--labels", "a,b",
        ])
        assert exit_code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_empty_label_set_is_an_error(self, sample_csv, capsys):
        exit_code = main(["annotate", str(sample_csv), "--labels", " , "])
        assert exit_code == 2
        assert "at least one label" in capsys.readouterr().err


class TestEvaluateCommand:
    def test_evaluate_benchmark(self, capsys):
        exit_code = main([
            "evaluate", "--benchmark", "d4-20", "--method", "archetype",
            "--model", "gpt", "--columns", "40", "--rules", "--per-class",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "d4-20" in captured
        assert "micro_f1" in captured
        assert "per-class accuracy" in captured

    def test_parser_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--benchmark", "unknown"])

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecutorKnobs:
    def test_annotate_with_concurrent_executor_and_stats(self, sample_csv, capsys):
        exit_code = main([
            "annotate", str(sample_csv),
            "--labels", "state,url,telephone,person",
            "--model", "gpt",
            "--executor", "concurrent", "--workers", "2", "--stats",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "per-stage pipeline stats" in captured
        assert "query" in captured

    def test_evaluate_executor_matches_default_predictions(self, capsys):
        args = ["evaluate", "--benchmark", "d4-20", "--method", "archetype",
                "--model", "gpt", "--columns", "30"]
        assert main(args) == 0
        default_out = capsys.readouterr().out
        assert main(args + ["--executor", "concurrent", "--workers", "4"]) == 0
        concurrent_out = capsys.readouterr().out

        def score_fields(output: str) -> list[str]:
            # Row fields up to cache_hits; the trailing plan_s/execute_s
            # columns are wall-clock and differ run to run.
            return output.splitlines()[3].split()[:10]

        # Identical predictions => identical scores in the summary table.
        assert score_fields(default_out) == score_fields(concurrent_out)

    def test_parser_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["evaluate", "--executor", "warp-drive"]
            )

    def test_parser_rejects_nonpositive_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--workers", "0"])

    def test_workers_without_concurrent_executor_is_an_error(self, capsys):
        exit_code = main([
            "evaluate", "--benchmark", "d4-20", "--columns", "10",
            "--workers", "4",
        ])
        assert exit_code == 2
        assert "concurrent" in capsys.readouterr().err

    def test_evaluate_stats_flag_prints_stage_table(self, capsys):
        exit_code = main([
            "evaluate", "--benchmark", "d4-20", "--method", "archetype",
            "--model", "gpt", "--columns", "20", "--stats",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "per-stage pipeline stats" in captured


class TestSuiteCommand:
    def test_suite_list_prints_registry(self, capsys):
        assert main(["suite", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table4_zeroshot" in out and "registered experiments" in out

    def test_suite_list_honours_only_filter(self, capsys):
        assert main(["suite", "--list", "--only", "fig*"]) == 0
        out = capsys.readouterr().out
        assert "fig7_labelset" in out and "table4_zeroshot" not in out

    def test_suite_quick_run_writes_artifacts(self, tmp_path, capsys):
        cache_dir = tmp_path / "suite-cache"
        exit_code = main([
            "suite", "--quick", "--only", "shift", "--only", "table1_cost",
            "--cache-dir", str(cache_dir),
        ])
        assert exit_code == 0
        assert (cache_dir / "results.json").exists()
        assert (cache_dir / "REPORT.md").exists()
        assert "done in" in capsys.readouterr().out

    def test_suite_unknown_pattern_is_an_error(self, tmp_path, capsys):
        exit_code = main([
            "suite", "--quick", "--only", "tabel4*",
            "--output-dir", str(tmp_path),
        ])
        assert exit_code == 2
        assert "matches no experiment" in capsys.readouterr().err

    def test_suite_resume_without_cache_dir_is_an_error(self, tmp_path, capsys):
        exit_code = main([
            "suite", "--quick", "--only", "shift", "--resume", "some-run",
            "--output-dir", str(tmp_path),
        ])
        assert exit_code == 2
        assert "cache-dir" in capsys.readouterr().err
