"""Endpoint round-trips against a live server on an ephemeral port."""

from __future__ import annotations

import json

from repro.core.pipeline import ArcheType, ArcheTypeConfig
from repro.core.table import Column

from _service_helpers import (
    CITY_VALUES,
    LABELS,
    YEAR_VALUES,
    request,
    request_json,
    running_server,
)


def golden_label(values: list[str], name: str | None = None, seed: int = 0) -> str:
    """The sequential in-process label the service must reproduce."""
    annotator = ArcheType(
        ArcheTypeConfig(model="gpt", label_set=LABELS, seed=seed)
    )
    return annotator.annotate_column(Column(values=list(values), name=name)).label


class TestHealthz:
    def test_healthy_server_reports_ok(self):
        with running_server() as server:
            status, _, body = request_json(server.port, "GET", "/healthz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["pending"] == 0


class TestAnnotate:
    def test_single_column_matches_the_sequential_golden_path(self):
        with running_server() as server:
            status, _, body = request_json(
                server.port,
                "POST",
                "/v1/annotate",
                {"column": {"name": "place", "values": CITY_VALUES}},
            )
            assert status == 200
            assert body["label"] == golden_label(CITY_VALUES, name="place")
            assert body["index"] == 0
            assert body["column"] == "place"
            assert set(body) == {
                "index", "column", "label", "raw_response",
                "remapped", "rule_applied", "strategy",
            }

    def test_request_level_label_set_and_seed_override_defaults(self):
        with running_server() as server:
            status, _, body = request_json(
                server.port,
                "POST",
                "/v1/annotate",
                {
                    "column": {"values": YEAR_VALUES},
                    "label_set": list(LABELS),
                    "seed": 7,
                },
            )
            assert status == 200
            assert body["label"] == golden_label(YEAR_VALUES, seed=7)

    def test_batch_preserves_column_order(self):
        with running_server() as server:
            status, _, body = request_json(
                server.port,
                "POST",
                "/v1/annotate/batch",
                {
                    "columns": [
                        {"name": "a", "values": CITY_VALUES},
                        {"name": "b", "values": YEAR_VALUES},
                    ]
                },
            )
            assert status == 200
            assert body["n_columns"] == 2
            assert [r["index"] for r in body["results"]] == [0, 1]
            assert [r["column"] for r in body["results"]] == ["a", "b"]
            for result, values in zip(
                body["results"], (CITY_VALUES, YEAR_VALUES)
            ):
                assert result["label"] == golden_label(
                    values, name=result["column"]
                )


class TestStream:
    def test_ndjson_lines_in_order_with_done_trailer(self):
        with running_server() as server:
            status, headers, raw = request(
                server.port,
                "POST",
                "/v1/annotate/stream",
                {
                    "columns": [
                        {"values": CITY_VALUES},
                        {"values": YEAR_VALUES},
                    ],
                    "chunk_size": 1,
                },
            )
            assert status == 200
            assert headers["content-type"] == "application/x-ndjson"
            lines = [
                json.loads(line)
                for line in raw.decode("utf-8").splitlines()
                if line
            ]
            assert [line["index"] for line in lines[:-1]] == [0, 1]
            assert lines[-1] == {"done": True, "n_columns": 2}
            assert lines[0]["label"] == golden_label(CITY_VALUES)
            assert lines[1]["label"] == golden_label(YEAR_VALUES)


class TestProtocolErrors:
    def test_unknown_path_is_404(self):
        with running_server() as server:
            status, _, body = request_json(server.port, "GET", "/nope")
            assert status == 404
            assert body["error"]["status"] == 404

    def test_wrong_method_is_405(self):
        with running_server() as server:
            status, _, _ = request_json(server.port, "PUT", "/healthz")
            assert status == 405
            status, _, _ = request_json(server.port, "GET", "/v1/annotate")
            assert status == 405

    def test_invalid_json_is_400(self):
        with running_server() as server:
            status, _, body = request_json(
                server.port, "POST", "/v1/annotate", b"not json"
            )
            assert status == 400
            assert "JSON" in body["error"]["message"]

    def test_missing_label_set_without_default_is_400(self):
        with running_server(label_set=()) as server:
            status, _, body = request_json(
                server.port,
                "POST",
                "/v1/annotate",
                {"column": {"values": CITY_VALUES}},
            )
            assert status == 400
            assert "label_set" in body["error"]["message"]

    def test_oversized_body_is_413(self):
        with running_server(max_body_bytes=256) as server:
            status, _, body = request_json(
                server.port,
                "POST",
                "/v1/annotate",
                {"column": {"values": ["x" * 1024]}},
            )
            assert status == 413
            assert body["error"]["status"] == 413

    def test_empty_values_is_400(self):
        with running_server() as server:
            status, _, body = request_json(
                server.port,
                "POST",
                "/v1/annotate",
                {"column": {"values": []}},
            )
            assert status == 400
            assert "values" in body["error"]["message"]
