"""Cross-socket sharing: in-flight dedup and cross-request batching."""

from __future__ import annotations

import threading

from repro.core.pipeline import ArcheType, ArcheTypeConfig
from repro.core.table import Column

from _service_helpers import (
    CITY_VALUES,
    LABELS,
    YEAR_VALUES,
    request_json,
    running_server,
)


def _post_concurrently(port: int, bodies: list[dict]) -> list[dict]:
    """POST every body from its own thread, released by one barrier."""
    barrier = threading.Barrier(len(bodies))
    results: list[dict | None] = [None] * len(bodies)

    def one(index: int) -> None:
        barrier.wait()
        status, _, body = request_json(
            port, "POST", "/v1/annotate", bodies[index]
        )
        assert status == 200
        results[index] = body

    threads = [
        threading.Thread(target=one, args=(index,))
        for index in range(len(bodies))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert all(result is not None for result in results)
    return [result for result in results if result is not None]


class TestCrossSocketSharing:
    def test_duplicate_prompts_across_sockets_issue_one_model_call(self):
        # The model is slow and the linger window wide, so two identical
        # requests from different sockets overlap: the second must coalesce
        # onto the first's in-flight future (or hit the LRU), never the
        # model.
        golden = ArcheType(
            ArcheTypeConfig(model="gpt", label_set=LABELS, seed=0)
        )
        golden.annotate_column(Column(values=list(CITY_VALUES)))
        expected_queries = golden.query_count

        with running_server(
            model_latency=0.2, max_batch_wait=0.1, workers=4
        ) as server:
            body = {"column": {"values": CITY_VALUES}}
            results = _post_concurrently(server.port, [body, body])
            assert results[0]["label"] == results[1]["label"]
            _, _, stats = request_json(server.port, "GET", "/stats")
            # Exactly the sequential golden path's query count: the
            # duplicate was absorbed by the shared warm tier.
            assert stats["queries"]["n_queries"] == expected_queries
            hits = (
                stats["queries"]["n_cache_hits"]
                + stats["queries"]["n_inflight_hits"]
            )
            assert hits >= 1

    def test_distinct_concurrent_requests_coalesce_into_one_batch(self):
        # Two different columns arriving within the linger window must
        # leave the scheduler as one cross-request model batch.
        with running_server(
            model_latency=0.05, max_batch_wait=0.25, workers=4
        ) as server:
            results = _post_concurrently(
                server.port,
                [
                    {"column": {"values": CITY_VALUES}},
                    {"column": {"values": YEAR_VALUES}},
                ],
            )
            assert len(results) == 2
            _, _, stats = request_json(server.port, "GET", "/stats")
            assert stats["scheduler"]["n_cross_request_batches"] >= 1

    def test_labels_under_concurrency_match_the_sequential_golden_path(self):
        columns = [CITY_VALUES, YEAR_VALUES, ["a@b.com", "c@d.org"],
                   ["true", "false", "true"]]
        golden_labels = []
        for values in columns:
            annotator = ArcheType(
                ArcheTypeConfig(model="gpt", label_set=LABELS, seed=0)
            )
            golden_labels.append(
                annotator.annotate_column(Column(values=list(values))).label
            )
        with running_server(
            model_latency=0.02, max_batch_wait=0.05, workers=8
        ) as server:
            bodies = [{"column": {"values": values}} for values in columns]
            results = _post_concurrently(server.port, bodies)
            assert [result["label"] for result in results] == golden_labels
