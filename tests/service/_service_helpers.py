"""Helpers shared by the service test modules.

Kept outside ``conftest.py`` because the repo-wide ``--import-mode=importlib``
loads conftest files as plugins, not importable siblings.
"""

from __future__ import annotations

import http.client
import json
from contextlib import contextmanager
from typing import Iterator

from repro.service import BackgroundServer, ServiceConfig

#: A small deliberately-diverse label set the simulated models discriminate.
LABELS = ("city", "year", "person name", "url")

#: Columns with obviously different shapes, for multi-column requests.
CITY_VALUES = ["Tokyo", "Paris", "Lima", "Oslo", "Cairo"]
YEAR_VALUES = ["1987", "2001", "1999", "2024"]


def make_config(**overrides: object) -> ServiceConfig:
    """An ephemeral-port test config; ``overrides`` win."""
    base: dict[str, object] = {
        "port": 0,
        "label_set": LABELS,
        "model": "gpt",
        "max_batch_wait": 0.005,
        "drain_timeout": 5.0,
    }
    base.update(overrides)
    return ServiceConfig(**base)  # type: ignore[arg-type]


@contextmanager
def running_server(**overrides: object) -> Iterator[BackgroundServer]:
    with BackgroundServer(make_config(**overrides)) as server:
        yield server


def request(
    port: int,
    method: str,
    path: str,
    body: dict | bytes | None = None,
    headers: dict[str, str] | None = None,
    timeout: float = 30.0,
) -> tuple[int, dict[str, str], bytes]:
    """One HTTP exchange; returns (status, lower-cased headers, raw body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload: bytes | None
        if isinstance(body, dict):
            payload = json.dumps(body).encode("utf-8")
        else:
            payload = body
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            data,
        )
    finally:
        conn.close()


def request_json(
    port: int,
    method: str,
    path: str,
    body: dict | bytes | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, dict[str, str], dict]:
    status, response_headers, data = request(port, method, path, body, headers)
    return status, response_headers, json.loads(data)
