"""Shared configuration for the service tests.

Helpers live in ``_service_helpers.py`` (importlib import mode forbids
importing from conftest); make the directory importable when pytest is
invoked from the repository root.
"""

from __future__ import annotations

import sys
from pathlib import Path

_HERE = str(Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
