"""Admission control: token buckets, the pending bound, 429 + Retry-After."""

from __future__ import annotations

import threading

import pytest

from repro.service import AdmissionController, TokenBucket

from _service_helpers import CITY_VALUES, request_json, running_server


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        assert [bucket.try_take(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_take(0.0)
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        assert bucket.try_take(0.25) > 0.0  # half a token accrued
        assert bucket.try_take(0.8) == 0.0  # >1 token accrued by now

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        bucket.try_take(0.0)
        # A long idle stretch must not bank more than `burst` tokens.
        assert bucket.try_take(1000.0) == 0.0
        assert bucket.try_take(1000.0) == 0.0
        assert bucket.try_take(1000.0) > 0.0


class TestAdmissionController:
    def test_pending_bound_saturates_then_releases(self):
        controller = AdmissionController(max_pending=2)
        assert controller.try_admit("t").admitted
        assert controller.try_admit("t").admitted
        refused = controller.try_admit("t")
        assert not refused.admitted
        assert refused.reason == "saturated"
        assert refused.retry_after > 0
        controller.release()
        assert controller.try_admit("t").admitted
        snapshot = controller.snapshot()
        assert snapshot["n_admitted"] == 3
        assert snapshot["n_saturated"] == 1

    def test_rate_limit_is_per_tenant(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_pending=100, tenant_rate=1.0, tenant_burst=1, clock=clock
        )
        assert controller.try_admit("alice").admitted
        refused = controller.try_admit("alice")
        assert not refused.admitted
        assert refused.reason == "rate-limit"
        assert refused.retry_after == pytest.approx(1.0)
        # A different tenant has its own bucket.
        assert controller.try_admit("bob").admitted
        # The bucket refills with the clock.
        clock.advance(1.0)
        assert controller.try_admit("alice").admitted

    def test_draining_refuses_everything(self):
        controller = AdmissionController(max_pending=10)
        assert controller.try_admit("t").admitted
        controller.begin_drain()
        refused = controller.try_admit("t")
        assert not refused.admitted
        assert refused.reason == "draining"
        assert controller.snapshot()["n_rejected_draining"] == 1

    def test_await_idle_blocks_until_release(self):
        clock = FakeClock()  # only used for try_admit bookkeeping
        controller = AdmissionController(max_pending=10, clock=clock)
        assert controller.try_admit("t").admitted
        done = threading.Event()

        def waiter() -> None:
            assert controller.await_idle(timeout=10.0)
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not done.wait(timeout=0.1)
        controller.release()
        assert done.wait(timeout=10.0)
        thread.join(timeout=10.0)

    def test_await_idle_times_out_with_pending_work(self):
        controller = AdmissionController(max_pending=10)
        assert controller.try_admit("t").admitted
        assert controller.await_idle(timeout=0.05) is False

    def test_release_without_admit_is_a_bug(self):
        controller = AdmissionController(max_pending=10)
        with pytest.raises(RuntimeError, match="release"):
            controller.release()


class TestLiveBackpressure:
    def test_pending_overflow_is_429_with_retry_after(self):
        # One worker, one admission slot, a slow model: while the first
        # request occupies the slot, the second must be refused immediately.
        with running_server(
            max_pending=1, workers=1, model_latency=0.3
        ) as server:
            first: list[int] = []

            def slow_request() -> None:
                status, _, _ = request_json(
                    server.port,
                    "POST",
                    "/v1/annotate",
                    {"column": {"values": CITY_VALUES}},
                )
                first.append(status)

            thread = threading.Thread(target=slow_request)
            thread.start()
            # Wait until the slow request holds the admission slot.
            deadline = 50
            while deadline:
                _, _, health = request_json(server.port, "GET", "/healthz")
                if health["pending"] >= 1:
                    break
                deadline -= 1
                threading.Event().wait(0.01)
            assert deadline, "slow request never became pending"
            status, headers, body = request_json(
                server.port,
                "POST",
                "/v1/annotate",
                {"column": {"values": ["1", "2", "3"]}},
            )
            thread.join(timeout=30.0)
            assert status == 429
            assert "retry-after" in headers
            assert int(headers["retry-after"]) >= 1
            assert body["error"]["retry_after_s"] > 0
            assert first == [200]  # the slow request itself succeeded

    def test_tenant_rate_limit_is_429_and_scoped_to_the_tenant(self):
        with running_server(tenant_rate=0.5, tenant_burst=1) as server:
            body = {"column": {"values": CITY_VALUES}}
            status, _, _ = request_json(
                server.port, "POST", "/v1/annotate", body,
                headers={"X-Tenant": "alice"},
            )
            assert status == 200
            status, headers, _ = request_json(
                server.port, "POST", "/v1/annotate", body,
                headers={"X-Tenant": "alice"},
            )
            assert status == 429
            assert "retry-after" in headers
            # Another tenant's bucket is untouched.
            status, _, _ = request_json(
                server.port, "POST", "/v1/annotate", body,
                headers={"X-Tenant": "bob"},
            )
            assert status == 200
