"""Graceful drain and the /stats schema."""

from __future__ import annotations

import asyncio
import json
import threading

from repro.service import HTTPRequest, ServiceState
from repro.service.handlers import StreamingResponse

from _service_helpers import (
    CITY_VALUES,
    make_config,
    request_json,
    running_server,
)


class TestGracefulDrain:
    def test_stop_completes_in_flight_requests(self):
        server_ctx = running_server(model_latency=0.3, drain_timeout=10.0)
        server = server_ctx.__enter__()
        statuses: list[int] = []
        try:
            def slow_request() -> None:
                status, _, _ = request_json(
                    server.port,
                    "POST",
                    "/v1/annotate",
                    {"column": {"values": CITY_VALUES}},
                )
                statuses.append(status)

            thread = threading.Thread(target=slow_request)
            thread.start()
            deadline = 100
            while deadline:
                _, _, health = request_json(server.port, "GET", "/healthz")
                if health["pending"] >= 1:
                    break
                deadline -= 1
                threading.Event().wait(0.01)
            assert deadline, "request never became pending"
        finally:
            # Drain with the request still in flight: stop() must wait for
            # it and the client must receive its 200, not a reset.
            server_ctx.__exit__(None, None, None)
        thread.join(timeout=30.0)
        assert statuses == [200]

    def test_draining_state_refuses_new_requests_with_503(self):
        state = ServiceState(make_config())
        try:
            state.admission.begin_drain()
            body = json.dumps(
                {"column": {"values": CITY_VALUES}}
            ).encode("utf-8")
            response = asyncio.run(
                state.dispatch(
                    HTTPRequest("POST", "/v1/annotate", {}, body)
                )
            )
            assert not isinstance(response, StreamingResponse)
            assert response.status == 503
            assert ("Retry-After", "1") in response.headers
        finally:
            state.shutdown()


class TestStats:
    def test_schema_and_counters_round_trip(self):
        with running_server() as server:
            request_json(
                server.port,
                "POST",
                "/v1/annotate",
                {"column": {"values": CITY_VALUES}},
            )
            request_json(
                server.port,
                "POST",
                "/v1/annotate/batch",
                {"columns": [{"values": CITY_VALUES}, {"values": ["1", "2"]}]},
            )
            status, _, stats = request_json(server.port, "GET", "/stats")
            assert status == 200
            assert set(stats) == {
                "service", "config", "admission", "scheduler", "queries",
                "store",
            }
            assert stats["service"]["n_requests"] == {
                "/v1/annotate": 1,
                "/v1/annotate/batch": 1,
            }
            assert stats["service"]["n_columns_annotated"] == 3
            assert stats["service"]["n_errors"] == 0
            assert stats["admission"]["n_admitted"] == 2
            assert stats["queries"]["n_prompts"] >= 3
            assert stats["scheduler"]["n_batches"] >= 1
            assert stats["store"] is None  # no cache dir configured
            # The whole payload must be JSON round-trippable (it already
            # was decoded once; re-encode to pin serializability).
            json.dumps(stats)

    def test_store_section_appears_with_a_cache_dir(self, tmp_path):
        with running_server(cache_dir=str(tmp_path)) as server:
            request_json(
                server.port,
                "POST",
                "/v1/annotate",
                {"column": {"values": CITY_VALUES}},
            )
            _, _, stats = request_json(server.port, "GET", "/stats")
            assert stats["store"] is not None
            assert stats["store"]["kind"] == "sqlite"
            assert stats["store"]["entries"] >= 1
