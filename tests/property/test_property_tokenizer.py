"""Property-based tests for the tokenizer, serializer and prompt parser."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialization import PromptSerializer, PromptStyle
from repro.llm.prompt_parsing import parse_prompt
from repro.llm.tokenizer import SimpleTokenizer

simple_text = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789 .,:-", max_size=120
)
#: Cell values that survive the serializer's comma-separated join unambiguously.
cell_value = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_/",
    min_size=1,
    max_size=25,
).filter(lambda s: s.strip("-_/") != "")
label_value = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=2, max_size=15)


class TestTokenizerInvariants:
    @given(simple_text)
    @settings(max_examples=200)
    def test_counts_are_non_negative_and_zero_only_for_blank(self, text):
        count = SimpleTokenizer().count(text)
        assert count >= 0
        if text.strip():
            assert count > 0

    @given(simple_text, simple_text)
    @settings(max_examples=150)
    def test_count_is_subadditive_within_tolerance(self, a, b):
        tokenizer = SimpleTokenizer()
        combined = tokenizer.count(a + " " + b)
        assert combined <= tokenizer.count(a) + tokenizer.count(b) + 1

    @given(simple_text, st.integers(min_value=1, max_value=200))
    @settings(max_examples=150)
    def test_truncate_never_exceeds_budget(self, text, budget):
        tokenizer = SimpleTokenizer()
        truncated = tokenizer.truncate(text, budget)
        assert tokenizer.count(truncated) <= budget


class TestSerializationRoundTrip:
    @given(
        st.lists(cell_value, min_size=1, max_size=8),
        st.lists(label_value, min_size=2, max_size=8, unique=True),
        st.sampled_from(PromptStyle.zero_shot_styles()),
    )
    @settings(max_examples=150)
    def test_parse_recovers_options_for_every_style(self, values, labels, style):
        serializer = PromptSerializer(style=style, context_window=100000)
        prompt = serializer.serialize(values, labels)
        parsed = parse_prompt(prompt.text)
        assert parsed.has_options
        assert set(parsed.options) == set(prompt.label_set)
        assert parsed.style_letter == style.value

    @given(
        st.lists(cell_value, min_size=1, max_size=8),
        st.lists(label_value, min_size=2, max_size=8, unique=True),
    )
    @settings(max_examples=100)
    def test_serialized_token_count_matches_tokenizer(self, values, labels):
        serializer = PromptSerializer(style=PromptStyle.S, context_window=100000)
        prompt = serializer.serialize(values, labels)
        assert prompt.token_count == SimpleTokenizer().count(prompt.text)
        assert not prompt.truncated
