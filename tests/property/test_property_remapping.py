"""Property-based tests for label remapping and embeddings."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.remapping import (
    NULL_LABEL,
    ContainsRemapper,
    NoOpRemapper,
    SimilarityRemapper,
    normalize,
)
from repro.llm.embeddings import HashingEmbedder

text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), max_codepoint=0x2FFF),
    max_size=40,
)
label_sets = st.lists(
    st.text(alphabet="abcdefghij klmnop", min_size=1, max_size=20).filter(
        lambda s: bool(s.strip())
    ),
    min_size=1,
    max_size=8,
    unique_by=lambda s: normalize(s),
).filter(lambda labels: all(normalize(l) for l in labels))

REMAPPERS = [NoOpRemapper(), ContainsRemapper(), SimilarityRemapper()]


class TestRemappingInvariants:
    @given(text, label_sets)
    @settings(max_examples=150)
    def test_remap_returns_label_from_set_or_null(self, response, labels):
        for remapper in REMAPPERS:
            result = remapper.remap(response, labels)
            assert result.label == NULL_LABEL or result.label in labels
            assert result.original_response == response

    @given(label_sets, st.integers(min_value=0, max_value=7))
    @settings(max_examples=100)
    def test_exact_label_is_always_accepted_unchanged(self, labels, index):
        label = labels[index % len(labels)]
        for remapper in REMAPPERS:
            result = remapper.remap(label, labels)
            assert result.label == label

    @given(text, label_sets)
    @settings(max_examples=100)
    def test_remapping_is_deterministic(self, response, labels):
        for remapper in REMAPPERS:
            first = remapper.remap(response, labels)
            second = remapper.remap(response, labels)
            assert first.label == second.label

    @given(text, label_sets)
    @settings(max_examples=100)
    def test_similarity_recovers_whenever_response_is_non_empty(self, response, labels):
        result = SimilarityRemapper().remap(response, labels)
        if response.strip() and HashingEmbedder().embed(response).any():
            assert result.label in labels


class TestEmbeddingInvariants:
    @given(text)
    @settings(max_examples=150)
    def test_embeddings_are_unit_norm_or_zero(self, value):
        vector = HashingEmbedder().embed(value)
        norm = float(np.linalg.norm(vector))
        assert norm == 0.0 or abs(norm - 1.0) < 1e-9

    @given(text, text)
    @settings(max_examples=150)
    def test_similarity_is_symmetric_and_bounded(self, a, b):
        embedder = HashingEmbedder()
        ab = embedder.similarity(a, b)
        ba = embedder.similarity(b, a)
        assert abs(ab - ba) < 1e-9
        assert -1.0 - 1e-9 <= ab <= 1.0 + 1e-9

    @given(text)
    @settings(max_examples=100)
    def test_self_similarity_is_one_for_non_trivial_text(self, value):
        embedder = HashingEmbedder()
        if embedder.embed(value).any():
            assert embedder.similarity(value, value) == 1.0 or abs(
                embedder.similarity(value, value) - 1.0
            ) < 1e-9
