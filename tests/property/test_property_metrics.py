"""Property-based tests for the evaluation metrics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    accuracy,
    confidence_interval,
    evaluate_predictions,
    per_class_accuracy,
    per_class_f1,
    weighted_f1,
)

LABELS = ["a", "b", "c", "d", "e"]
labels_strategy = st.lists(st.sampled_from(LABELS), min_size=1, max_size=60)


@st.composite
def truth_and_predictions(draw):
    truth = draw(labels_strategy)
    predictions = draw(
        st.lists(st.sampled_from(LABELS), min_size=len(truth), max_size=len(truth))
    )
    return truth, predictions


class TestMetricInvariants:
    @given(truth_and_predictions())
    @settings(max_examples=150)
    def test_scores_are_bounded(self, pair):
        truth, predictions = pair
        assert 0.0 <= accuracy(truth, predictions) <= 1.0
        assert 0.0 <= weighted_f1(truth, predictions) <= 1.0

    @given(labels_strategy)
    @settings(max_examples=100)
    def test_perfect_predictions_score_one(self, truth):
        assert accuracy(truth, truth) == 1.0
        assert weighted_f1(truth, truth) == 1.0
        assert all(v == 1.0 for v in per_class_f1(truth, truth).values())

    @given(truth_and_predictions())
    @settings(max_examples=100)
    def test_f1_is_one_iff_accuracy_is_one(self, pair):
        truth, predictions = pair
        assert (accuracy(truth, predictions) == 1.0) == (
            weighted_f1(truth, predictions) == 1.0
        )

    @given(truth_and_predictions())
    @settings(max_examples=100)
    def test_per_class_accuracy_consistent_with_overall(self, pair):
        truth, predictions = pair
        per_class = per_class_accuracy(truth, predictions)
        support = {label: truth.count(label) for label in set(truth)}
        recomposed = sum(per_class[l] * support[l] for l in support) / len(truth)
        assert abs(recomposed - accuracy(truth, predictions)) < 1e-9

    @given(truth_and_predictions())
    @settings(max_examples=100)
    def test_report_is_internally_consistent(self, pair):
        truth, predictions = pair
        report = evaluate_predictions(truth, predictions)
        assert report.n_columns == len(truth)
        assert sum(report.support.values()) == len(truth)
        assert abs(report.weighted_f1_pct - 100 * report.weighted_f1) < 1e-9

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=100000),
    )
    def test_confidence_interval_bounds(self, score, n):
        ci = confidence_interval(score, n)
        assert 0.0 <= ci <= 1.0
        # Quadrupling the sample size halves the interval width.
        assert abs(confidence_interval(score, 4 * n) - ci / 2) < 1e-9

    @given(truth_and_predictions(), st.permutations(range(5)))
    @settings(max_examples=60)
    def test_metrics_invariant_under_consistent_relabeling(self, pair, permutation):
        truth, predictions = pair
        mapping = {LABELS[i]: LABELS[permutation[i]] for i in range(len(LABELS))}
        renamed_truth = [mapping[t] for t in truth]
        renamed_pred = [mapping[p] for p in predictions]
        assert weighted_f1(truth, predictions) == weighted_f1(renamed_truth, renamed_pred)
        assert accuracy(truth, predictions) == accuracy(renamed_truth, renamed_pred)
