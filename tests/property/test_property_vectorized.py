"""Property tests pinning the vectorized hot loops to their scalar references.

The perf work in the annotation core (ISSUE 7) replaced three per-value
Python loops with vectorized passes:

* importance scoring in :mod:`repro.core.sampling` (``importance.batch``),
* the all-numeric gate :func:`repro.core.table.all_numeric_strings`,
* the summary-statistics sketch in :mod:`repro.core.features`
  (array-wide float parse, integer-mantissa ``pstdev``, thresholded median).

All three feed either the RNG stream or the serialized prompt, so "close
enough" floats would silently change downstream labels.  These tests assert
**bit-identical** agreement with the scalar forms the vectorized code
replaced — ``np.array_equal`` on probability vectors, ``==`` on raw float
statistics, equality on the formatted prompt strings.
"""

from __future__ import annotations

import math
import statistics

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import SummaryStatistics, summary_statistics
from repro.core.sampling import (
    ArcheTypeSampler,
    length_importance,
    make_label_containment_importance,
)
from repro.core.table import Column, all_numeric_strings, is_numeric_string

# ---------------------------------------------------------------------------
# Strategies

#: Strings that must satisfy ``is_numeric_string``: plain integers, floats in
#: positional and scientific notation, comma-grouped thousands, padded with
#: optional whitespace and an optional explicit sign.
_numeric_cores = st.one_of(
    st.integers(-(10**9), 10**9).map(str),
    st.floats(allow_nan=False, allow_infinity=False).map(repr),
    st.integers(0, 10**9).map(lambda n: f"{n:,}"),
    st.floats(-1e6, 1e6, allow_nan=False).map(lambda f: f"{f:.3f}"),
    st.floats(-1e20, 1e20, allow_nan=False).map(lambda f: f"{f:e}"),
    st.fractions().map(lambda q: repr(float(q))),
)
_padding = st.sampled_from(["", " ", "  ", "\t"])
numeric_strings = st.builds(
    lambda left, sign, core, right: f"{left}{sign}{core.lstrip('+-')}{right}",
    _padding,
    st.sampled_from(["", "+", "-"]),
    _numeric_cores,
    _padding,
)

#: Arbitrary cell text (includes control characters such as newlines, which
#: exercise the joined-regex fallback inside ``all_numeric_strings``).
cell_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), max_codepoint=0x2FFF),
    max_size=30,
)

#: Mixed columns: mostly-numeric, mostly-text, and everything in between.
cell_values = st.one_of(numeric_strings, cell_text)
value_lists = st.lists(cell_values, min_size=1, max_size=60)
numeric_lists = st.lists(numeric_strings, min_size=1, max_size=60)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _scalar_summary_statistics(values) -> SummaryStatistics | None:
    """The historical per-value sketch the vectorized path replaced."""
    usable = [v for v in values if v.strip()]
    if not usable:
        return None
    if all(is_numeric_string(v) for v in usable):
        numbers = [float(v.replace(",", "")) for v in usable]
        over_lengths = False
    else:
        numbers = [float(len(v)) for v in usable]
        over_lengths = True
    std = statistics.pstdev(numbers) if len(numbers) > 1 else 0.0
    try:
        mode = float(statistics.mode(numbers))
    except statistics.StatisticsError:  # pragma: no cover - 3.8+ never raises
        mode = numbers[0]
    return SummaryStatistics(
        std=std,
        mean=statistics.fmean(numbers),
        mode=mode,
        median=float(statistics.median(numbers)),
        maximum=max(numbers),
        minimum=min(numbers),
        over_lengths=over_lengths,
    )


def _identical(left: float, right: float) -> bool:
    """Value-exact float equality (NaN == NaN).

    The sign of zero is deliberately NOT distinguished: among equal values
    ``np.max`` may return a differently-signed zero than the scalar ``max``
    (e.g. over ``[0.0, -0.0]``), and ``_format_stat`` collapses both to
    ``"0"`` so the serialized prompt cannot observe the difference.
    """
    return left == right or (math.isnan(left) and math.isnan(right))


class TestAllNumericGate:
    @given(value_lists)
    @settings(max_examples=300)
    def test_matches_per_value_scan(self, values):
        assert all_numeric_strings(values) == all(
            is_numeric_string(v) for v in values
        )

    @given(numeric_lists)
    @settings(max_examples=150)
    def test_accepts_pure_numeric_columns(self, values):
        assert all_numeric_strings(values)

    @given(numeric_lists, cell_text.filter(lambda s: not is_numeric_string(s)))
    @settings(max_examples=150)
    def test_one_text_value_rejects_anywhere(self, values, text_value):
        for position in (0, len(values) // 2, len(values)):
            mixed = values[:position] + [text_value] + values[position:]
            assert not all_numeric_strings(mixed)


class TestSummaryStatisticsExactness:
    @given(value_lists)
    @settings(max_examples=300)
    def test_raw_floats_match_scalar_reference(self, values):
        fast = summary_statistics(values)
        reference = _scalar_summary_statistics(values)
        assert (fast is None) == (reference is None)
        if fast is None:
            return
        assert fast.over_lengths == reference.over_lengths
        for field in ("std", "mean", "mode", "median", "maximum", "minimum"):
            assert _identical(getattr(fast, field), getattr(reference, field)), (
                field,
                getattr(fast, field),
                getattr(reference, field),
            )

    @given(value_lists)
    @settings(max_examples=150)
    def test_prompt_strings_match_scalar_reference(self, values):
        fast = summary_statistics(values)
        reference = _scalar_summary_statistics(values)
        if fast is None:
            assert reference is None
            return
        assert fast.as_strings() == reference.as_strings()

    def test_numpy_median_branch_matches_stdlib(self):
        # Deterministic large columns straddling _NP_MEDIAN_MIN_SIZE: both
        # median branches (and the integer-mantissa pstdev at scale) must
        # agree with the scalar sketch bit-for-bit.
        rng = np.random.default_rng(7)
        for size in (511, 512, 513, 1200):
            numeric = [f"{x:.6f}" for x in rng.normal(1e3, 50.0, size=size)]
            text = ["v" * int(n) for n in rng.integers(1, 40, size=size)]
            for values in (numeric, text):
                assert summary_statistics(values) == _scalar_summary_statistics(
                    values
                )


class TestVectorizedImportanceScoring:
    @given(value_lists)
    @settings(max_examples=200)
    def test_length_batch_matches_scalar(self, values):
        batched = length_importance.batch(values)
        scalar = np.array([length_importance(v) for v in values])
        assert np.array_equal(batched, scalar)

    @given(
        st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=6),
        value_lists,
    )
    @settings(max_examples=150)
    def test_label_containment_batch_matches_scalar(self, labels, values):
        importance = make_label_containment_importance(labels)
        batched = importance.batch(values)
        scalar = np.array([importance(v) for v in values])
        assert np.array_equal(batched, scalar)

    @given(value_lists)
    @settings(max_examples=200)
    def test_probability_vector_identical_to_scalar_path(self, values):
        unique = list(dict.fromkeys(v for v in values if v.strip()))
        if not unique:
            return
        scalar_importance = lambda v: length_importance(v)  # noqa: E731 - no .batch
        vectorized = ArcheTypeSampler()._probabilities(unique)
        scalar = ArcheTypeSampler(scalar_importance)._probabilities(unique)
        assert np.array_equal(vectorized, scalar)

    @given(value_lists, st.integers(1, 10), seeds)
    @settings(max_examples=100)
    def test_sampled_contexts_unchanged_by_vectorization(self, values, size, seed):
        if not any(v.strip() for v in values):
            return
        column = Column(values=values)
        scalar_importance = lambda v: length_importance(v)  # noqa: E731 - no .batch
        fast = ArcheTypeSampler().sample(
            column, size, np.random.default_rng(seed)
        )
        reference = ArcheTypeSampler(scalar_importance).sample(
            column, size, np.random.default_rng(seed)
        )
        assert fast.values == reference.values
        assert fast.with_replacement == reference.with_replacement
