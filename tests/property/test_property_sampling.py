"""Property-based tests for context sampling and the tabular substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import ArcheTypeSampler, FirstKSampler, SimpleRandomSampler
from repro.core.table import Column

#: Cell values: printable text without surrogate weirdness, some empties mixed in.
cell_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), max_codepoint=0x2FFF),
    max_size=30,
)
non_empty_cell = cell_values.filter(lambda s: bool(s.strip()))

columns = st.builds(
    Column,
    values=st.lists(st.one_of(cell_values, non_empty_cell), min_size=1, max_size=50).filter(
        lambda values: any(v.strip() for v in values)
    ),
)
sample_sizes = st.integers(min_value=1, max_value=15)
seeds = st.integers(min_value=0, max_value=2**31 - 1)

SAMPLERS = [SimpleRandomSampler(), FirstKSampler(), ArcheTypeSampler()]


class TestSamplingInvariants:
    @given(columns, sample_sizes, seeds)
    @settings(max_examples=150)
    def test_sample_has_requested_size_and_draws_from_column(self, column, size, seed):
        for sampler in SAMPLERS:
            result = sampler.sample(column, size, np.random.default_rng(seed))
            assert len(result.values) == size
            assert set(result.values) <= set(column.non_empty_values())

    @given(columns, sample_sizes, seeds)
    @settings(max_examples=100)
    def test_sampling_is_deterministic_in_the_seed(self, column, size, seed):
        for sampler in SAMPLERS:
            first = sampler.sample(column, size, np.random.default_rng(seed))
            second = sampler.sample(column, size, np.random.default_rng(seed))
            assert first.values == second.values

    @given(columns, sample_sizes, seeds)
    @settings(max_examples=100)
    def test_archetype_without_replacement_has_no_duplicates(self, column, size, seed):
        unique_count = len({v for v in column.unique_values() if v.strip()})
        result = ArcheTypeSampler().sample(column, size, np.random.default_rng(seed))
        if unique_count >= size:
            assert not result.with_replacement
            assert len(set(result.values)) == size

    @given(columns, sample_sizes, seeds)
    @settings(max_examples=100)
    def test_samples_never_contain_empty_strings(self, column, size, seed):
        for sampler in SAMPLERS:
            result = sampler.sample(column, size, np.random.default_rng(seed))
            assert all(v.strip() for v in result.values)

    @given(columns)
    @settings(max_examples=100)
    def test_unique_values_invariants(self, column):
        uniques = column.unique_values()
        assert len(uniques) == len(set(uniques))
        assert set(uniques) == set(column.values)
