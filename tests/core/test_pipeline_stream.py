"""Tests for the streaming annotation API (ArcheType.annotate_stream)."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ArcheType, ArcheTypeConfig
from repro.core.table import Column, Table
from repro.datasets.registry import load_benchmark
from repro.exceptions import ConfigurationError

LABELS = ["state", "person", "url", "number", "text"]


def _annotator(benchmark=None, **overrides) -> ArcheType:
    label_set = benchmark.label_set if benchmark is not None else LABELS
    return ArcheType(ArcheTypeConfig(model="gpt", label_set=label_set, **overrides))


class TestAnnotateStream:
    def test_stream_is_lazy(self):
        """Results are yielded per chunk, before later columns are planned."""
        state = Column(values=["Alaska", "Colorado", "Kentucky", "Nevada", "Texas"])
        consumed: list[int] = []

        def column_source():
            for index in range(6):
                consumed.append(index)
                yield state

        stream = _annotator().annotate_stream(column_source(), chunk_size=2)
        assert consumed == []  # nothing consumed before iteration starts
        first = next(stream)
        assert first.label == "state"
        # Exactly one chunk (plus nothing else) has been pulled from the source.
        assert consumed == [0, 1]

    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_stream_matches_batched_labels(self, chunk_size):
        benchmark = load_benchmark("sotab-27", n_columns=30, seed=3)
        columns = [bc.column for bc in benchmark.columns]
        reference = [
            r.label for r in _annotator(benchmark, seed=1).annotate_columns(columns)
        ]
        streamed = [
            r.label
            for r in _annotator(benchmark, seed=1).annotate_stream(
                iter(columns), chunk_size=chunk_size
            )
        ]
        assert streamed == reference

    def test_stream_with_concurrent_executor(self):
        benchmark = load_benchmark("d4-20", n_columns=24, seed=6)
        columns = [bc.column for bc in benchmark.columns]
        reference = [
            r.label for r in _annotator(benchmark, seed=0).annotate_columns(columns)
        ]
        streamed = [
            r.label
            for r in _annotator(benchmark, seed=0).annotate_stream(
                iter(columns), chunk_size=8, executor="concurrent", workers=4
            )
        ]
        assert streamed == reference

    def test_stream_shared_table_uses_global_column_indices(self, small_table):
        """Chunking must not reset the shared-table column index."""
        annotator = _annotator()
        streamed = list(
            annotator.annotate_stream(
                small_table.columns, table=small_table, chunk_size=2
            )
        )
        reference_annotator = _annotator()
        reference = reference_annotator.annotate_columns(
            small_table.columns, table=small_table
        )
        assert [r.label for r in streamed] == [r.label for r in reference]
        assert [r.prompt.text if r.prompt else None for r in streamed] == \
            [r.prompt.text if r.prompt else None for r in reference]

    def test_stream_with_per_column_tables(self, state_column, url_column):
        tables = [
            Table(columns=[state_column], name="a.csv"),
            Table(columns=[url_column], name="b.csv"),
        ]
        results = list(
            _annotator().annotate_stream(
                iter([state_column, url_column]),
                tables=iter(tables),
                column_indices=iter([0, 0]),
                chunk_size=1,
            )
        )
        assert len(results) == 2
        assert results[0].label == "state"

    def test_stream_rejects_nonpositive_chunk(self):
        with pytest.raises(ConfigurationError):
            list(_annotator().annotate_stream(iter([]), chunk_size=0))

    def test_stream_short_tables_iterable_raises_cleanly(self, state_column):
        """A short tables/column_indices iterable must raise ConfigurationError,
        not an opaque PEP-479 'generator raised StopIteration' RuntimeError."""
        columns = [state_column, state_column, state_column]
        with pytest.raises(ConfigurationError, match="one entry per"):
            list(_annotator().annotate_stream(
                iter(columns), tables=iter([None]), chunk_size=1
            ))
        with pytest.raises(ConfigurationError, match="one entry per"):
            list(_annotator().annotate_stream(
                iter(columns), column_indices=iter([0, 0]), chunk_size=2
            ))

    def test_stream_empty_source(self):
        assert list(_annotator().annotate_stream(iter([]))) == []
