"""Tests for the batched query path and the (prompt, params) LRU cache."""

from __future__ import annotations

from repro.core.querying import QueryEngine
from repro.llm.base import GenerationParams, LanguageModel


class CountingModel(LanguageModel):
    """Pure test double: deterministic output, counts generate calls."""

    name = "counting"
    context_window = 128

    def __init__(self) -> None:
        self.calls: list[tuple[str, GenerationParams]] = []
        self.batch_calls: list[list[str]] = []

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        params = params or GenerationParams()
        self.calls.append((prompt, params))
        return f"ans:{prompt}:{params.resample_index}"

    def generate_batch(self, prompts, params=None):
        self.batch_calls.append(list(prompts))
        return super().generate_batch(prompts, params)


class TestQueryCache:
    def test_repeated_prompt_hits_cache(self):
        model = CountingModel()
        engine = QueryEngine(model=model)
        first = engine.query("hello")
        second = engine.query("hello")
        assert first == second
        assert len(model.calls) == 1
        assert engine.stats.n_queries == 1
        assert engine.stats.n_cache_hits == 1
        assert engine.stats.n_prompts == 2

    def test_distinct_params_are_distinct_keys(self):
        model = CountingModel()
        engine = QueryEngine(model=model)
        engine.query("hello")
        engine.requery("hello", attempt=1)
        assert len(model.calls) == 2
        assert engine.stats.n_cache_hits == 0

    def test_cache_disabled(self):
        model = CountingModel()
        engine = QueryEngine(model=model, cache_size=0)
        engine.query("hello")
        engine.query("hello")
        assert len(model.calls) == 2
        assert engine.stats.n_cache_hits == 0

    def test_lru_eviction_bounds_cache(self):
        model = CountingModel()
        engine = QueryEngine(model=model, cache_size=2)
        engine.query("a")
        engine.query("b")
        engine.query("c")  # evicts "a"
        assert engine.cache_len == 2
        engine.query("a")
        assert len(model.calls) == 4

    def test_lru_recency_updated_on_hit(self):
        model = CountingModel()
        engine = QueryEngine(model=model, cache_size=2)
        engine.query("a")
        engine.query("b")
        engine.query("a")  # refresh "a"; "b" is now oldest
        engine.query("c")  # evicts "b"
        engine.query("a")
        assert [prompt for prompt, _ in model.calls] == ["a", "b", "c"]

    def test_clear_cache(self):
        model = CountingModel()
        engine = QueryEngine(model=model)
        engine.query("a")
        engine.clear_cache()
        assert engine.cache_len == 0
        engine.query("a")
        assert len(model.calls) == 2

    def test_hit_rate(self):
        model = CountingModel()
        engine = QueryEngine(model=model)
        assert engine.stats.hit_rate == 0.0
        engine.query("a")
        engine.query("a")
        engine.query("a")
        engine.query("b")
        assert engine.stats.hit_rate == 0.5


class TestQueryBatch:
    def test_empty_batch(self):
        engine = QueryEngine(model=CountingModel())
        assert engine.query_batch([]) == []
        assert engine.stats.n_batches == 0

    def test_batch_matches_sequential_responses(self):
        prompts = ["p1", "p2", "p3", "p1"]
        sequential_engine = QueryEngine(model=CountingModel(), cache_size=0)
        sequential = [sequential_engine.query(p) for p in prompts]
        batched = QueryEngine(model=CountingModel()).query_batch(prompts)
        assert batched == sequential

    def test_batch_deduplicates_within_batch(self):
        model = CountingModel()
        engine = QueryEngine(model=model)
        engine.query_batch(["x", "y", "x", "x"])
        assert model.batch_calls == [["x", "y"]]
        assert engine.stats.n_queries == 2
        # Duplicates of a *pending* prompt coalesce onto its in-flight
        # request rather than hitting the (not yet filled) LRU.
        assert engine.stats.n_inflight_hits == 2
        assert engine.stats.n_cache_hits == 0
        assert engine.stats.n_hits == 2
        assert engine.stats.n_prompts == 4
        assert engine.stats.n_batches == 1

    def test_batch_uses_cache_across_batches(self):
        model = CountingModel()
        engine = QueryEngine(model=model)
        first = engine.query_batch(["x", "y"])
        second = engine.query_batch(["y", "z", "x"])
        assert second[2] == first[0] and second[0] == first[1]
        assert [prompt for prompt, _ in model.calls] == ["x", "y", "z"]
        assert engine.stats.n_cache_hits == 2

    def test_batch_per_prompt_params(self):
        model = CountingModel()
        engine = QueryEngine(model=model)
        params = [GenerationParams(resample_index=0), GenerationParams(resample_index=1)]
        out = engine.query_batch(["p", "p"], params)
        assert out == ["ans:p:0", "ans:p:1"]
        assert engine.stats.n_queries == 2

    def test_batch_without_cache_preserves_call_order(self):
        # cache_size=0 is the escape hatch for stateful models: duplicates
        # must all reach the model, in order, with no dedup and no "hits".
        model = CountingModel()
        engine = QueryEngine(model=model, cache_size=0)
        engine.query_batch(["x", "x", "y"])
        assert model.batch_calls == [["x", "x", "y"]]
        assert engine.stats.n_queries == 3
        assert engine.stats.n_cache_hits == 0

    def test_single_query_sees_batch_cache_entries(self):
        model = CountingModel()
        engine = QueryEngine(model=model)
        engine.query_batch(["x"])
        assert engine.query("x") == "ans:x:0"
        assert len(model.calls) == 1
