"""Equivalence and regression tests for the batched annotation engine."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ArcheType, ArcheTypeConfig
from repro.core.remapping import NULL_LABEL
from repro.core.rules import SOTAB_27_RULES
from repro.core.table import Column, Table
from repro.datasets.registry import load_benchmark
from repro.eval.runner import ExperimentRunner
from repro.llm.base import GenerationParams, LanguageModel

LABELS = ["state", "person", "url", "number", "text"]


def _sotab_annotator(seed: int = 0, benchmark=None, **overrides) -> ArcheType:
    benchmark = benchmark or load_benchmark("sotab-27", n_columns=100, seed=5)
    config = ArcheTypeConfig(
        model="gpt",
        label_set=benchmark.label_set,
        sample_size=5,
        seed=seed,
        **overrides,
    )
    return ArcheType(config)


class TestAnnotateColumnsEquivalence:
    def test_bit_identical_on_seeded_sotab_sample(self):
        """Acceptance: batched == sequential on a seeded 100-column SOTAB sample."""
        benchmark = load_benchmark("sotab-27", n_columns=100, seed=5)
        columns = [bc.column for bc in benchmark.columns]

        sequential = _sotab_annotator(benchmark=benchmark)
        sequential_results = [sequential.annotate_column(c) for c in columns]

        batched = _sotab_annotator(benchmark=benchmark)
        batched_results = batched.annotate_columns(columns)

        assert len(batched_results) == 100
        for seq, bat in zip(sequential_results, batched_results):
            assert bat.label == seq.label
            assert bat.raw_response == seq.raw_response
            assert bat.remapped == seq.remapped
            assert bat.sampled_values == seq.sampled_values

    @pytest.mark.parametrize("batch_size", [0, 1, 7, 100, None])
    def test_chunking_does_not_change_labels(self, batch_size):
        benchmark = load_benchmark("sotab-27", n_columns=40, seed=9)
        columns = [bc.column for bc in benchmark.columns]
        reference = [
            r.label for r in _sotab_annotator(benchmark=benchmark).annotate_columns(columns)
        ]
        chunked = _sotab_annotator(benchmark=benchmark).annotate_columns(
            columns, batch_size=batch_size
        )
        assert [r.label for r in chunked] == reference

    def test_annotate_table_matches_per_column_loop(self, small_table):
        sequential = ArcheType(ArcheTypeConfig(model="gpt", label_set=LABELS))
        expected = [
            sequential.annotate_column(column, table=small_table, column_index=index)
            for index, column in enumerate(small_table.columns)
        ]
        batched = ArcheType(ArcheTypeConfig(model="gpt", label_set=LABELS))
        results = batched.annotate_table(small_table)
        assert [r.label for r in results] == [r.label for r in expected]
        assert [r.raw_response for r in results] == [r.raw_response for r in expected]

    def test_runner_batched_matches_sequential_drive(self):
        benchmark = load_benchmark("d4-20", n_columns=60, seed=3)
        batched = ExperimentRunner(batch_size=None).evaluate(
            _sotab_annotator(benchmark=benchmark), benchmark, "batched"
        )
        sequential = ExperimentRunner(batch_size=0).evaluate(
            _sotab_annotator(benchmark=benchmark), benchmark, "sequential"
        )
        assert batched.predictions == sequential.predictions
        assert batched.weighted_f1_pct == sequential.weighted_f1_pct

    def test_duplicate_columns_served_from_cache(self):
        # first-k sampling is deterministic, so identical columns serialize to
        # identical prompts: one reaches the model, the copies coalesce onto
        # its in-flight request (same submitted batch) or hit the LRU.
        column = Column(values=["Alaska", "Colorado", "Kentucky", "Nevada", "Texas"],
                        name="state")
        annotator = ArcheType(
            ArcheTypeConfig(model="gpt", label_set=LABELS, sampler="firstk")
        )
        results = annotator.annotate_columns([column, column, column])
        assert len({r.label for r in results}) == 1
        assert annotator.query_count == 1
        assert annotator.hit_count >= 2

    def test_empty_and_rule_columns_interleaved(self):
        empty = Column(values=["", "  "])
        url = Column(values=["http://a.com/x", "http://b.org/y", "http://c.net/z"])
        state = Column(values=["Alaska", "Colorado", "Kentucky", "Nevada", "Texas"])
        annotator = ArcheType(
            ArcheTypeConfig(model="gpt", label_set=LABELS, ruleset=SOTAB_27_RULES)
        )
        results = annotator.annotate_columns([empty, url, state])
        assert results[0].label == NULL_LABEL
        assert results[0].strategy == "empty-column"
        assert results[1].label == "url"
        assert results[1].rule_applied
        assert results[2].label == "state"

    def test_mismatched_tables_length_rejected(self):
        from repro.exceptions import ConfigurationError

        annotator = ArcheType(ArcheTypeConfig(model="gpt", label_set=LABELS))
        with pytest.raises(ConfigurationError):
            annotator.annotate_columns(
                [Column(values=["a"])], tables=[None, None]
            )

    def test_negative_batch_size_rejected(self):
        from repro.exceptions import ConfigurationError

        annotator = ArcheType(ArcheTypeConfig(model="gpt", label_set=LABELS))
        with pytest.raises(ConfigurationError):
            annotator.annotate_columns([Column(values=["a"])], batch_size=-1)


class ScriptedModel(LanguageModel):
    """Deterministic test double returning a fixed sequence of answers."""

    name = "scripted"
    context_window = 2048

    def __init__(self, answers: list[str]) -> None:
        self.answers = list(answers)
        self.prompts: list[str] = []

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        self.prompts.append(prompt)
        if not self.answers:
            return "state"
        if len(self.answers) == 1:
            return self.answers[0]
        return self.answers.pop(0)


class TestNoPostQueryRulePass:
    """Regression for the dead post-query rule branch (removed).

    RuleSet.apply is deterministic in the column, so a matching rule always
    fires at stage 0 and skips the model; an unmapped LLM answer therefore
    can never be rescued by rules, and ``rule_applied`` is True only for
    stage-0 (pre-query) matches.
    """

    def test_unmapped_answer_stays_null_with_rules_enabled(self, state_column):
        model = ScriptedModel(answers=["gibberish"])
        annotator = ArcheType(
            ArcheTypeConfig(model=model, label_set=LABELS,
                            ruleset=SOTAB_27_RULES, remapper="none")
        )
        result = annotator.annotate_column(state_column)
        assert result.label == NULL_LABEL
        assert not result.rule_applied
        assert model.prompts  # the model was queried: no rule matched

    def test_rule_applied_only_from_stage_zero(self, url_column):
        annotator = ArcheType(
            ArcheTypeConfig(model=ScriptedModel(answers=["gibberish"]),
                            label_set=LABELS, ruleset=SOTAB_27_RULES,
                            remapper="none")
        )
        result = annotator.annotate_column(url_column)
        assert result.label == "url"
        assert result.rule_applied
        assert result.strategy == "rule"
