"""Unit and small integration tests for the end-to-end ArcheType pipeline."""

from __future__ import annotations

import pytest

from repro.core.pipeline import AnnotationResult, ArcheType, ArcheTypeConfig
from repro.core.remapping import NULL_LABEL
from repro.core.rules import SOTAB_27_RULES
from repro.core.serialization import PromptStyle
from repro.core.table import Column, Table
from repro.exceptions import ConfigurationError
from repro.llm.base import GenerationParams, LanguageModel

LABELS = ["state", "person", "url", "number", "text"]


class ScriptedModel(LanguageModel):
    """Deterministic test double returning a fixed sequence of answers."""

    name = "scripted"
    context_window = 2048

    def __init__(self, answers: list[str]) -> None:
        self.answers = list(answers)
        self.prompts: list[str] = []

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        self.prompts.append(prompt)
        if not self.answers:
            return "state"
        if len(self.answers) == 1:
            return self.answers[0]
        return self.answers.pop(0)


class TestConfigValidation:
    def test_label_set_required(self):
        with pytest.raises(ConfigurationError):
            ArcheType(ArcheTypeConfig(model="t5", label_set=[]))

    def test_sample_size_positive(self):
        with pytest.raises(ConfigurationError):
            ArcheType(ArcheTypeConfig(model="t5", label_set=LABELS, sample_size=0))

    def test_with_updates_returns_modified_copy(self):
        config = ArcheTypeConfig(model="t5", label_set=LABELS)
        changed = config.with_updates(sample_size=9)
        assert changed.sample_size == 9
        assert config.sample_size == 5


class TestAnnotation:
    def test_state_column_annotated_as_state(self, state_column):
        annotator = ArcheType(ArcheTypeConfig(model="gpt", label_set=LABELS, sample_size=5))
        result = annotator.annotate_column(state_column)
        assert isinstance(result, AnnotationResult)
        assert result.label == "state"
        assert result.prompt is not None
        assert len(result.sampled_values) == 5

    def test_url_column_annotated_as_url(self, url_column):
        annotator = ArcheType(ArcheTypeConfig(model="t5", label_set=LABELS, sample_size=4))
        assert annotator.annotate_column(url_column).label == "url"

    def test_empty_column_yields_null_label(self):
        annotator = ArcheType(ArcheTypeConfig(model="t5", label_set=LABELS))
        result = annotator.annotate_column(Column(values=["", "  "]))
        assert result.label == NULL_LABEL
        assert result.strategy == "empty-column"

    def test_rule_short_circuits_model(self, url_column):
        model = ScriptedModel(answers=["person"])
        annotator = ArcheType(
            ArcheTypeConfig(model=model, label_set=LABELS, ruleset=SOTAB_27_RULES)
        )
        result = annotator.annotate_column(url_column)
        assert result.label == "url"
        assert result.rule_applied
        assert model.prompts == []  # the LLM was never queried

    def test_remapping_recovers_verbose_answer(self, state_column):
        model = ScriptedModel(answers=["I believe this is a state column"])
        annotator = ArcheType(
            ArcheTypeConfig(model=model, label_set=LABELS, remapper="contains")
        )
        result = annotator.annotate_column(state_column)
        assert result.label == "state"
        assert result.remapped

    def test_resample_issues_extra_queries(self, state_column):
        model = ScriptedModel(answers=["gibberish", "more gibberish", "state"])
        annotator = ArcheType(
            ArcheTypeConfig(model=model, label_set=LABELS, remapper="contains+resample",
                            resample_k=3)
        )
        result = annotator.annotate_column(state_column)
        assert result.label == "state"
        assert annotator.query_count == 3

    def test_annotate_table_covers_all_columns(self, small_table):
        annotator = ArcheType(ArcheTypeConfig(model="gpt", label_set=LABELS))
        results = annotator.annotate_table(small_table)
        assert len(results) == len(small_table)
        assert all(r.label in LABELS or r.label == NULL_LABEL for r in results)

    def test_deterministic_given_seed(self, state_column):
        def annotate_once() -> str:
            annotator = ArcheType(
                ArcheTypeConfig(model="ul2", label_set=LABELS, seed=11)
            )
            return annotator.annotate_column(state_column).label

        assert annotate_once() == annotate_once()

    def test_finetuned_prompt_style_accepted(self, state_column):
        annotator = ArcheType(
            ArcheTypeConfig(model="gpt", label_set=LABELS,
                            prompt_style=PromptStyle.FINETUNED)
        )
        result = annotator.annotate_column(state_column)
        assert result.prompt is not None
        assert "CATEGORY:" in result.prompt.text

    def test_numeric_restriction_passed_through(self, numeric_column):
        annotator = ArcheType(
            ArcheTypeConfig(model="gpt", label_set=LABELS, numeric_labels=["number"])
        )
        result = annotator.annotate_column(numeric_column)
        assert result.prompt is not None
        assert result.prompt.numeric_restricted
        assert result.label == "number"

    def test_table_context_available_to_features(self, small_table):
        from repro.core.features import FeatureConfig

        annotator = ArcheType(
            ArcheTypeConfig(
                model="gpt", label_set=LABELS,
                features=FeatureConfig.from_spec("CS+TN"),
            )
        )
        result = annotator.annotate_column(small_table[0], table=small_table, column_index=0)
        assert "TABLE NAME: demo_table.csv" in result.prompt.text
