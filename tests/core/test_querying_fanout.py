"""Tests for QueryEngine fan-out, worker spawning and stats reset."""

from __future__ import annotations

import threading
import time

from repro.core.querying import QueryEngine
from repro.llm.base import GenerationParams, LanguageModel
from repro.llm.registry import get_model


class RecordingModel(LanguageModel):
    """Pure test model that records which thread served each prompt."""

    name = "recording"
    context_window = 2048

    def __init__(self) -> None:
        self.calls: list[tuple[str, str]] = []
        self._lock = threading.Lock()

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        with self._lock:
            self.calls.append((prompt, threading.current_thread().name))
        return f"echo:{prompt}"


class TestQueryBatchFanout:
    def test_fanout_matches_query_batch_responses_and_stats(self):
        prompts = [f"prompt-{i}" for i in range(20)] + ["prompt-0", "prompt-1"]

        batched = QueryEngine(model=get_model("gpt"), cache_size=64)
        expected = batched.query_batch(prompts)

        fanned = QueryEngine(model=get_model("gpt"), cache_size=64)
        got = fanned.query_batch_fanout(prompts, workers=4)

        assert got == expected
        assert fanned.stats.n_queries == batched.stats.n_queries
        # Which tier absorbs a duplicate (LRU vs in-flight coalescing) is
        # timing-dependent under fan-out; the combined hit count is not.
        assert fanned.stats.n_hits == batched.stats.n_hits
        assert fanned.stats.n_prompts == batched.stats.n_prompts

    def test_fanout_uses_multiple_threads(self):
        class SlowRecordingModel(RecordingModel):
            def generate(self, prompt, params=None):
                time.sleep(0.005)  # long enough for chunks to overlap
                return super().generate(prompt, params)

        model = SlowRecordingModel()
        engine = QueryEngine(model=model, cache_size=64)
        prompts = [f"p{i}" for i in range(16)]
        responses = engine.query_batch_fanout(prompts, workers=4)
        assert responses == [f"echo:p{i}" for i in range(16)]
        assert len({thread for _, thread in model.calls}) > 1

    def test_fanout_deduplicates_against_the_cache(self):
        model = RecordingModel()
        engine = QueryEngine(model=model, cache_size=64)
        engine.query("p0")
        engine.query_batch_fanout(["p0", "p1", "p1", "p2"], workers=2)
        called = [prompt for prompt, _ in model.calls]
        assert called.count("p0") == 1  # served from cache on the fan-out
        assert called.count("p1") == 1  # in-batch duplicate answered once
        assert engine.stats.n_hits == 2  # one LRU hit + one coalesced dupe

    def test_fanout_cache_disabled_sends_everything(self):
        model = RecordingModel()
        engine = QueryEngine(model=model, cache_size=0)
        engine.query_batch_fanout(["a", "a", "b"], workers=2)
        assert len(model.calls) == 3
        assert engine.stats.n_queries == 3

    def test_fanout_cache_disabled_keeps_per_occurrence_completions(self):
        """Regression: duplicates map back positionally, like query_batch."""

        class StatefulModel(LanguageModel):
            name = "stateful"
            context_window = 2048

            def __init__(self) -> None:
                self.n = 0
                self._lock = threading.Lock()

            def generate(self, prompt, params=None):
                with self._lock:
                    self.n += 1
                    return f"{prompt}#{self.n}"

        prompts = ["p", "p", "q"]
        expected = QueryEngine(model=StatefulModel(), cache_size=0).query_batch(prompts)
        got = QueryEngine(model=StatefulModel(), cache_size=0).query_batch_fanout(
            prompts, workers=1
        )
        assert got == expected  # ['p#1', 'p#2', 'q#3'], not the last 'p' twice

    def test_fanout_empty_batch(self):
        engine = QueryEngine(model=RecordingModel())
        assert engine.query_batch_fanout([], workers=4) == []

    def test_explicit_chunk_size(self):
        model = RecordingModel()
        engine = QueryEngine(model=model, cache_size=64)
        responses = engine.query_batch_fanout(
            [f"p{i}" for i in range(10)], workers=3, chunk_size=2
        )
        assert responses == [f"echo:p{i}" for i in range(10)]

    def test_spawn_worker_has_no_cache_and_fresh_stats(self):
        engine = QueryEngine(model=get_model("gpt"), cache_size=64)
        engine.query("warm the stats")
        worker = engine.spawn_worker()
        assert worker.cache_size == 0
        assert worker.stats.n_queries == 0
        assert worker.params is engine.params


class TestResetStats:
    def test_reset_stats_zeroes_counters_keeps_cache(self):
        engine = QueryEngine(model=get_model("gpt"), cache_size=64)
        engine.query("a prompt")
        engine.query("a prompt")
        assert engine.stats.n_queries == 1
        assert engine.stats.n_cache_hits == 1
        engine.reset_stats()
        assert engine.stats.n_queries == 0
        assert engine.stats.n_cache_hits == 0
        assert engine.cache_len == 1
        engine.query("a prompt")
        assert engine.stats.n_queries == 0  # still served from the kept cache
        assert engine.stats.n_cache_hits == 1
