"""Unit tests for context sampling (Algorithm 1 and the baseline strategies)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sampling import (
    ArcheTypeSampler,
    FirstKSampler,
    SimpleRandomSampler,
    get_sampler,
    length_importance,
    list_samplers,
    make_label_containment_importance,
)
from repro.core.table import Column
from repro.exceptions import ConfigurationError, EmptyColumnError


@pytest.fixture()
def long_short_column() -> Column:
    # One long, highly informative value among many one-character values.
    return Column(values=["x"] * 30 + ["a very long and informative cell value"] * 2)


class TestImportanceFunctions:
    def test_length_importance_scales_with_length(self):
        assert length_importance("abcdef") > length_importance("ab")

    def test_length_importance_gives_blank_values_tiny_weight(self):
        assert length_importance("   ") == pytest.approx(0.01)

    def test_label_containment_matches_full_label(self):
        importance = make_label_containment_importance(["state", "person"])
        assert importance("the state of Alaska") == 1.0
        assert importance("something else entirely") == pytest.approx(0.1)

    def test_label_containment_matches_distinctive_tokens(self):
        importance = make_label_containment_importance(["article from Pennsylvania"])
        assert importance("HARRISBURG, PENNSYLVANIA, Feb. 6.-The council met") == 1.0
        assert importance("generic article body with no dateline") == pytest.approx(0.1)


class TestSamplers:
    def test_srs_draws_requested_count(self, state_column, fresh_rng):
        result = SimpleRandomSampler().sample(state_column, 4, fresh_rng)
        assert len(result.values) == 4
        assert set(result.values) <= set(state_column.values)

    def test_firstk_returns_prefix(self, state_column, fresh_rng):
        result = FirstKSampler().sample(state_column, 3, fresh_rng)
        assert result.values == state_column.values[:3]
        assert not result.with_replacement

    def test_firstk_wraps_when_short(self, fresh_rng):
        column = Column(values=["a", "b"])
        result = FirstKSampler().sample(column, 5, fresh_rng)
        assert result.values == ["a", "b", "a", "b", "a"]
        assert result.with_replacement

    def test_archetype_without_replacement_when_enough_uniques(self, state_column, fresh_rng):
        result = ArcheTypeSampler().sample(state_column, 5, fresh_rng)
        assert len(result.values) == 5
        assert len(set(result.values)) == 5
        assert not result.with_replacement

    def test_archetype_with_replacement_when_few_uniques(self, fresh_rng):
        column = Column(values=["yes", "no"])
        result = ArcheTypeSampler().sample(column, 6, fresh_rng)
        assert len(result.values) == 6
        assert result.with_replacement

    def test_archetype_prefers_long_values(self, long_short_column):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(50):
            result = ArcheTypeSampler().sample(long_short_column, 2, rng)
            if any("informative" in v for v in result.values):
                hits += 1
        # The long value is a single unique entry among two, but its length
        # weight should make it appear in almost every sample.
        assert hits >= 45

    def test_samplers_reject_empty_columns(self, fresh_rng):
        for sampler in (SimpleRandomSampler(), FirstKSampler(), ArcheTypeSampler()):
            with pytest.raises(EmptyColumnError):
                sampler.sample(Column(values=["", " "]), 3, fresh_rng)

    def test_samplers_reject_nonpositive_sample_size(self, state_column, fresh_rng):
        with pytest.raises(ConfigurationError):
            SimpleRandomSampler().sample(state_column, 0, fresh_rng)

    def test_sampling_is_deterministic_given_seed(self, state_column):
        a = ArcheTypeSampler().sample(state_column, 5, np.random.default_rng(3))
        b = ArcheTypeSampler().sample(state_column, 5, np.random.default_rng(3))
        assert a.values == b.values


class TestSamplerFactory:
    def test_list_samplers(self):
        assert set(list_samplers()) == {"archetype", "firstk", "srs"}

    def test_get_sampler_by_name(self):
        assert isinstance(get_sampler("srs"), SimpleRandomSampler)
        assert isinstance(get_sampler("firstk"), FirstKSampler)
        assert isinstance(get_sampler("archetype"), ArcheTypeSampler)

    def test_get_sampler_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_sampler("stratified")

    def test_label_containment_requires_label_set(self):
        with pytest.raises(ConfigurationError):
            get_sampler("archetype", importance="label-containment")
        sampler = get_sampler(
            "archetype", label_set=["article from Texas"], importance="label-containment"
        )
        assert isinstance(sampler, ArcheTypeSampler)

    def test_unknown_importance_rejected(self):
        with pytest.raises(ConfigurationError):
            get_sampler("archetype", importance="tfidf")
