"""Tests for the query engine's persistent-store tier (LRU → store → model)."""

from __future__ import annotations

import pytest

from repro.core.querying import QueryEngine
from repro.core.store import open_store
from repro.llm.base import GenerationParams, LanguageModel


class CountingModel(LanguageModel):
    """Pure test double: completion is a function of (prompt, params)."""

    name = "counting"
    context_window = 2048

    def __init__(self) -> None:
        self.calls = 0

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        self.calls += 1
        params = params or GenerationParams()
        return f"answer:{prompt}:{params.resample_index}"


@pytest.fixture(params=["sqlite", "jsonl"])
def store(request, tmp_path):
    store = open_store(request.param, tmp_path)
    yield store
    store.close()


def _reopened(store, tmp_path):
    return open_store(store.kind, tmp_path)


class TestStoreTier:
    def test_miss_writes_through_hit_skips_model(self, store):
        model = CountingModel()
        engine = QueryEngine(model=model, store=store)
        assert engine.query("p1") == "answer:p1:0"
        assert model.calls == 1
        assert len(store) == 1

        # A second engine over the same store: no LRU, disk answers.
        cold_model = CountingModel()
        warm = QueryEngine(model=cold_model, store=store)
        assert warm.query("p1") == "answer:p1:0"
        assert cold_model.calls == 0
        assert warm.stats.n_store_hits == 1
        assert warm.stats.n_queries == 0

    def test_store_hit_promotes_into_lru(self, store):
        QueryEngine(model=CountingModel(), store=store).query("p1")
        warm = QueryEngine(model=CountingModel(), store=store)
        warm.query("p1")
        assert warm.cache_len == 1
        warm.query("p1")  # second time must be an LRU hit, not a disk read
        assert warm.stats.n_store_hits == 1
        assert warm.stats.n_cache_hits == 1

    def test_survives_process_restart(self, store, tmp_path):
        QueryEngine(model=CountingModel(), store=store).query("p1")
        reopened = _reopened(store, tmp_path)
        try:
            model = CountingModel()
            engine = QueryEngine(model=model, store=reopened)
            assert engine.query("p1") == "answer:p1:0"
            assert model.calls == 0
        finally:
            reopened.close()

    def test_batch_path_uses_and_fills_store(self, store):
        model = CountingModel()
        engine = QueryEngine(model=model, store=store)
        engine.query_batch(["a", "b", "a"])
        assert model.calls == 2
        assert len(store) == 2

        cold = CountingModel()
        warm = QueryEngine(model=cold, store=store)
        responses = warm.query_batch(["a", "b", "c"])
        assert responses == ["answer:a:0", "answer:b:0", "answer:c:0"]
        assert cold.calls == 1  # only "c" reaches the model
        assert warm.stats.n_store_hits == 2
        assert warm.stats.n_queries == 1

    def test_batch_duplicates_of_store_hit_count_once(self, store):
        QueryEngine(model=CountingModel(), store=store).query("a")
        warm = QueryEngine(model=CountingModel(), store=store)
        warm.query_batch(["a", "a", "a"])
        # One disk read for the unique key, LRU hits for the duplicates.
        assert warm.stats.n_store_hits == 1
        assert warm.stats.n_cache_hits == 2
        assert warm.stats.n_prompts == 3

    def test_fanout_parent_owns_store(self, store):
        model = CountingModel()
        engine = QueryEngine(model=model, store=store)
        engine.query_batch_fanout(["a", "b", "c", "d"], workers=2)
        assert len(store) == 4
        worker = engine.spawn_worker()
        assert worker.store is None  # workers never touch the disk tier

    def test_resample_params_are_stored_separately(self, store):
        model = CountingModel()
        engine = QueryEngine(model=model, store=store)
        engine.query("p")
        engine.requery("p", attempt=1)
        assert len(store) == 2
        warm = QueryEngine(model=CountingModel(), store=store)
        assert warm.requery("p", attempt=1) == "answer:p:1"
        assert warm.stats.n_store_hits == 1

    def test_cache_size_zero_bypasses_store(self, store):
        store.put("p", GenerationParams(), "stale-from-disk")
        model = CountingModel()
        engine = QueryEngine(model=model, store=store, cache_size=0)
        # The stateful-model escape hatch must ignore the disk tier entirely:
        # no reads (call-order semantics) and no writes.
        assert engine.query("p") == "answer:p:0"
        assert engine.query_batch(["q", "q"]) == ["answer:q:0", "answer:q:0"]
        assert model.calls == 3
        assert engine.stats.n_store_hits == 0
        assert store.get("q", GenerationParams()) is None

    def test_hit_rate_counts_both_tiers(self, store):
        QueryEngine(model=CountingModel(), store=store).query("p")
        warm = QueryEngine(model=CountingModel(), store=store)
        warm.query("p")   # store hit
        warm.query("p")   # LRU hit
        warm.query("new")  # miss
        assert warm.stats.n_hits == 2
        assert warm.stats.hit_rate == pytest.approx(2 / 3)

    def test_reset_stats_keeps_store_and_counters_restart(self, store):
        model = CountingModel()
        engine = QueryEngine(model=model, store=store)
        engine.query("p")
        engine.reset_stats()
        assert engine.stats.n_store_hits == 0
        assert len(store) == 1
