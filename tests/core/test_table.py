"""Unit tests for the tabular substrate (Column / Table / type testing)."""

from __future__ import annotations

import pytest

from repro.core.table import Column, Table, is_numeric_like, is_numeric_string
from repro.exceptions import EmptyColumnError


class TestNumericDetection:
    def test_plain_integers_are_numeric(self):
        assert is_numeric_string("42")
        assert is_numeric_string("-17")
        assert is_numeric_string("+3")

    def test_floats_and_exponents_are_numeric(self):
        assert is_numeric_string("3.14")
        assert is_numeric_string(".5")
        assert is_numeric_string("6.02e23")

    def test_thousands_separators_are_numeric(self):
        assert is_numeric_string("1,234,567")

    def test_words_are_not_numeric(self):
        assert not is_numeric_string("Alaska")
        assert not is_numeric_string("12 apples")
        assert not is_numeric_string("")

    def test_numeric_like_accepts_unit_suffixes(self):
        assert is_numeric_like("550mm")
        assert is_numeric_like("4.5 kg")
        assert is_numeric_like("99%")

    def test_numeric_like_rejects_prose(self):
        assert not is_numeric_like("about 550 millimetres wide")


class TestColumn:
    def test_values_are_coerced_to_strings(self):
        column = Column(values=[1, 2.5, "three"])
        assert column.values == ["1", "2.5", "three"]

    def test_len_iter_and_getitem(self):
        column = Column(values=["a", "b", "c"])
        assert len(column) == 3
        assert list(column) == ["a", "b", "c"]
        assert column[1] == "b"

    def test_unique_values_preserve_first_seen_order(self):
        column = Column(values=["b", "a", "b", "c", "a"])
        assert column.unique_values() == ["b", "a", "c"]

    def test_non_empty_values_filters_whitespace(self):
        column = Column(values=["x", "", "  ", "y"])
        assert column.non_empty_values() == ["x", "y"]

    def test_degenerate_detection(self):
        assert Column(values=["0", "0", "0"]).is_degenerate()
        assert Column(values=["", "  "]).is_degenerate()
        assert not Column(values=["0", "1"]).is_degenerate()

    def test_numeric_fraction_and_is_numeric(self):
        column = Column(values=["1", "2", "3", "x"])
        assert column.numeric_fraction() == pytest.approx(0.75)
        assert not column.is_numeric()
        assert Column(values=["1", "2", "3"]).is_numeric()

    def test_numeric_fraction_of_empty_column_is_zero(self):
        assert Column(values=[]).numeric_fraction() == 0.0
        assert not Column(values=[]).is_numeric()

    def test_require_values_raises_for_empty_columns(self):
        with pytest.raises(EmptyColumnError):
            Column(values=["", "  "]).require_values()
        assert Column(values=["x"]).require_values() == ["x"]


class TestTable:
    def test_from_rows_transposes(self):
        table = Table.from_rows(
            [["a", "1"], ["b", "2"], ["c", "3"]], column_names=["letter", "digit"],
        )
        assert len(table) == 2
        assert table[0].values == ["a", "b", "c"]
        assert table.column_by_name("digit").values == ["1", "2", "3"]

    def test_from_rows_pads_ragged_rows(self):
        table = Table.from_rows([["a", "1"], ["b"]])
        assert table[1].values == ["1", ""]

    def test_from_columns(self):
        table = Table.from_columns([["a", "b"], [1, 2]], column_names=["x", "y"])
        assert table.column_by_name("y").values == ["1", "2"]

    def test_column_by_name_raises_keyerror(self):
        table = Table.from_columns([["a"]], column_names=["x"])
        with pytest.raises(KeyError):
            table.column_by_name("missing")

    def test_other_columns(self, small_table):
        others = small_table.other_columns(1)
        assert len(others) == 2
        assert all(c.name != "links" for c in others)

    def test_other_columns_rejects_bad_index(self, small_table):
        with pytest.raises(IndexError):
            small_table.other_columns(10)

    def test_n_rows_is_longest_column(self):
        table = Table(columns=[Column(values=["a"]), Column(values=["x", "y", "z"])])
        assert table.n_rows == 3
        assert Table().n_rows == 0
