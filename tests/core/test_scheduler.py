"""Tests for the request scheduler: in-flight dedup, backpressure, failures.

The golden-label and querying-module tests pin the scheduler's *sequential*
behaviour (bit-identical labels and stats through the façade); this module
pins the concurrent machinery those tests cannot reach: cross-thread
coalescing, bounded-queue backpressure, exception propagation to coalesced
futures, microbatch lingering, and the requery path's scheduling.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.core.querying import QueryEngine
from repro.core.scheduler import RequestScheduler
from repro.exceptions import ConfigurationError, SchedulerSaturatedError
from repro.llm.base import GenerationParams, LanguageModel


class CountingModel(LanguageModel):
    """Pure test double: deterministic output, records every call."""

    name = "counting"
    context_window = 128

    def __init__(self) -> None:
        self.calls: list[str] = []
        self.batch_calls: list[list[str]] = []
        self._lock = threading.Lock()

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        params = params or GenerationParams()
        with self._lock:
            self.calls.append(prompt)
        return f"ans:{prompt}:{params.resample_index}"

    def generate_batch(self, prompts, params=None):
        with self._lock:
            self.batch_calls.append(list(prompts))
        return super().generate_batch(prompts, params)


class GatedModel(CountingModel):
    """Blocks inside ``generate`` until the test releases it."""

    name = "gated"

    def __init__(self) -> None:
        super().__init__()
        self.started = threading.Event()
        self.release = threading.Event()

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        self.started.set()
        assert self.release.wait(timeout=10.0), "test never released the model"
        return super().generate(prompt, params)


class ExplodingModel(CountingModel):
    """Raises for prompts containing "boom", answers everything else."""

    name = "exploding"

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        if "boom" in prompt:
            raise ValueError(f"cannot answer {prompt!r}")
        return super().generate(prompt, params)


def _wait_until(predicate, timeout=5.0, message="condition never became true"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.001)
    raise AssertionError(message)


class TestInflightDedup:
    def test_n_threads_same_prompt_one_model_call(self):
        """The satellite contract: N concurrent submitters, one model call."""
        model = GatedModel()
        scheduler = RequestScheduler(model)
        n_threads = 8
        results: list[str | None] = [None] * n_threads
        errors: list[BaseException] = []

        def worker(index: int) -> None:
            try:
                future = scheduler.submit("shared", on_full="drain")
                results[index] = scheduler.wait([future])[0]
            except BaseException as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        threads[0].start()
        # The leader is now inside generate(); the request stays in the
        # in-flight table until its batch settles, so every late submitter
        # must coalesce onto it instead of issuing its own model call.
        assert model.started.wait(timeout=5.0)
        for thread in threads[1:]:
            thread.start()
        _wait_until(
            lambda: scheduler.scheduler_stats.n_coalesced == n_threads - 1,
            message="late submitters did not coalesce onto the leader",
        )
        model.release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert results == ["ans:shared:0"] * n_threads
        assert model.calls == ["shared"]
        assert scheduler.stats.n_queries == 1
        assert scheduler.stats.n_inflight_hits == n_threads - 1

    def test_duplicate_submissions_share_one_future(self):
        scheduler = RequestScheduler(CountingModel())
        first = scheduler.submit("p")
        second = scheduler.submit("p")
        assert first is second
        assert scheduler.wait([first, second]) == ["ans:p:0", "ans:p:0"]
        assert scheduler.scheduler_stats.n_coalesced == 1

    def test_distinct_params_do_not_coalesce(self):
        model = CountingModel()
        scheduler = RequestScheduler(model)
        first = scheduler.submit("p", GenerationParams(resample_index=0))
        second = scheduler.submit("p", GenerationParams(resample_index=1))
        assert first is not second
        scheduler.wait([first, second])
        assert len(model.calls) == 2

    def test_cache_off_disables_coalescing(self):
        model = CountingModel()
        scheduler = RequestScheduler(model, cache_size=0)
        futures = [scheduler.submit("p"), scheduler.submit("p")]
        assert futures[0] is not futures[1]
        scheduler.wait(futures)
        assert model.calls == ["p", "p"]
        assert scheduler.stats.n_inflight_hits == 0


class TestBackpressure:
    def test_full_queue_blocks_submitters_not_drops(self):
        """The satellite contract: a full admission queue blocks, never drops."""
        model = CountingModel()
        scheduler = RequestScheduler(model, queue_depth=1)
        first = scheduler.submit("a")  # fills the queue

        blocked_result: list[str] = []

        def blocked_submitter() -> None:
            future = scheduler.submit("b", on_full="block")
            blocked_result.append(scheduler.wait([future])[0])

        thread = threading.Thread(target=blocked_submitter)
        thread.start()
        _wait_until(lambda: scheduler.scheduler_stats.n_submitted == 2)
        time.sleep(0.05)
        # The submitter is parked inside submit(): nothing dropped, nothing
        # enqueued past the bound, no exception.
        assert thread.is_alive()
        assert not blocked_result
        assert scheduler.scheduler_stats.n_enqueued == 1

        # Draining the queue frees space and wakes the parked submitter.
        assert scheduler.wait([first]) == ["ans:a:0"]
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert blocked_result == ["ans:b:0"]
        assert scheduler.scheduler_stats.n_enqueued == 2
        assert model.calls == ["a", "b"]

    def test_on_full_drain_makes_progress_single_threaded(self):
        # A single-threaded caller submitting more than queue_depth requests
        # before awaiting any would deadlock under pure blocking; on_full
        # "drain" has the submitter clear the queue itself instead.
        model = CountingModel()
        engine = QueryEngine(model=model, queue_depth=2)
        prompts = [f"p{i}" for i in range(10)]
        assert engine.query_batch(prompts) == [f"ans:p{i}:0" for i in range(10)]
        assert len(model.calls) == 10
        assert all(len(batch) <= 2 for batch in model.batch_calls)

    def test_invalid_on_full_rejected(self):
        scheduler = RequestScheduler(CountingModel())
        with pytest.raises(ConfigurationError, match="on_full"):
            scheduler.submit("p", on_full="drop")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError, match="max_batch_size"):
            RequestScheduler(CountingModel(), max_batch_size=0)
        with pytest.raises(ConfigurationError, match="max_wait"):
            RequestScheduler(CountingModel(), max_wait=-1.0)
        with pytest.raises(ConfigurationError, match="queue_depth"):
            RequestScheduler(CountingModel(), queue_depth=-3)
        scheduler = RequestScheduler(CountingModel())
        with pytest.raises(ConfigurationError, match="queue_depth"):
            scheduler.configure(queue_depth=0)


class TestFailurePropagation:
    def test_exception_reaches_every_coalesced_future(self):
        """The satellite contract: one failed batch fails all its waiters."""
        scheduler = RequestScheduler(ExplodingModel())
        first = scheduler.submit("boom")
        second = scheduler.submit("boom")  # coalesced onto the first
        with pytest.raises(ValueError, match="cannot answer"):
            scheduler.wait([first])
        assert isinstance(second.exception(), ValueError)
        # ... and the drain loop is not wedged: later requests still flow.
        healthy = scheduler.submit("fine")
        assert scheduler.wait([healthy]) == ["ans:fine:0"]
        assert scheduler.stats.n_queries == 1  # the failed batch is not billed

    def test_failed_request_leaves_inflight_table(self):
        scheduler = RequestScheduler(ExplodingModel())
        future = scheduler.submit("boom")
        with pytest.raises(ValueError):
            scheduler.wait([future])
        # A resubmission gets a fresh request (and fails again), rather than
        # coalescing onto the dead future forever.
        retry = scheduler.submit("boom")
        assert retry is not future
        with pytest.raises(ValueError):
            scheduler.wait([retry])

    def test_engine_batch_failure_then_recovery(self):
        engine = QueryEngine(model=ExplodingModel())
        with pytest.raises(ValueError, match="cannot answer"):
            engine.query_batch(["ok1", "boom", "ok2"])
        assert engine.query("fine") == "ans:fine:0"

    def test_miscounting_backend_fails_loudly(self):
        class ShortModel(CountingModel):
            name = "short"

            def generate_batch(self, prompts, params=None):
                return ["only-one"]

        engine = QueryEngine(model=ShortModel())
        with pytest.raises(RuntimeError, match="completions for"):
            engine.query_batch(["a", "b"])


class TestMicrobatching:
    def test_batch_size_cap_splits_drains(self):
        model = CountingModel()
        engine = QueryEngine(model=model, max_batch_size=2)
        engine.query_batch([f"p{i}" for i in range(5)])
        assert [len(batch) for batch in model.batch_calls] == [2, 2, 1]
        assert engine.stats.n_batches == 3

    def test_max_wait_lingers_for_cross_request_batches(self):
        model = CountingModel()
        scheduler = RequestScheduler(model, max_batch_size=2, max_wait=5.0)
        barrier = threading.Barrier(2)
        results: dict[str, str] = {}

        def submitter(prompt: str) -> None:
            barrier.wait()
            future = scheduler.submit(prompt, on_full="drain")
            results[prompt] = scheduler.wait([future])[0]

        threads = [
            threading.Thread(target=submitter, args=(p,)) for p in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20.0)
        assert results == {"a": "ans:a:0", "b": "ans:b:0"}
        # The first leader lingered until the second submitter's request
        # arrived, so the two independent requests shared one model batch.
        assert len(model.batch_calls) == 1
        assert sorted(model.batch_calls[0]) == ["a", "b"]
        assert scheduler.scheduler_stats.n_cross_request_batches == 1

    def test_stats_snapshot_is_json_safe(self):
        engine = QueryEngine(model=CountingModel())
        engine.query_batch(["a", "b", "c"])
        engine.query("d")
        snapshot = engine.scheduler.stats_snapshot()
        assert snapshot["batch_size_histogram"] == {"3": 1, "1": 1}
        assert snapshot["n_batches"] == 2
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped == snapshot

    def test_reset_stats_clears_scheduler_telemetry(self):
        engine = QueryEngine(model=CountingModel())
        engine.query_batch(["a", "b"])
        assert engine.scheduler_stats.n_batches == 1
        engine.reset_stats()
        snapshot = engine.scheduler.stats_snapshot()
        assert snapshot["n_batches"] == 0
        assert snapshot["batch_size_histogram"] == {}
        assert engine.cache_len == 2  # the cache survives, as for QueryStats


class TestRequeryScheduling:
    """Satellite regression: requery routes through the scheduler."""

    def test_requery_goes_through_the_scheduler(self):
        model = CountingModel()
        engine = QueryEngine(model=model)
        engine.query("p")
        engine.requery("p", attempt=1)
        # Both calls drained through generate_batch — the scheduler path —
        # not a direct generate() side door.
        assert model.batch_calls == [["p"], ["p"]]
        assert engine.stats.n_queries == 2
        assert engine.stats.n_resamples == 1
        assert engine.stats.n_batches == 2

    def test_repeated_requery_is_cached_and_stats_pinned(self):
        model = CountingModel()
        engine = QueryEngine(model=model)
        first = engine.requery("p", attempt=2)
        second = engine.requery("p", attempt=2)
        assert first == second == "ans:p:2"
        assert len(model.calls) == 1
        assert engine.stats.n_queries == 1
        assert engine.stats.n_resamples == 1
        assert engine.stats.n_cache_hits == 1
        assert engine.stats.n_prompts == 2

    def test_concurrent_requeries_coalesce(self):
        model = GatedModel()
        engine = QueryEngine(model=model)
        outcomes: list[str] = []

        def retry() -> None:
            outcomes.append(engine.requery("p", attempt=1))

        leader = threading.Thread(target=retry)
        leader.start()
        assert model.started.wait(timeout=5.0)
        follower = threading.Thread(target=retry)
        follower.start()
        _wait_until(lambda: engine.scheduler_stats.n_coalesced == 1)
        model.release.set()
        leader.join(timeout=10.0)
        follower.join(timeout=10.0)
        assert outcomes == ["ans:p:1", "ans:p:1"]
        assert model.calls == ["p"]
        assert engine.stats.n_queries == 1
        assert engine.stats.n_inflight_hits == 1


class LockProbeStore:
    """Store double that records whether the scheduler lock was held.

    Pins the ``lock-io-held`` fix: write-through ``put`` calls must happen
    *outside* the scheduler lock (disk latency must never extend a lock
    hold), while the admission-time ``get`` is the one deliberate,
    allowlisted exception.
    """

    def __init__(self) -> None:
        self.lock: threading.Lock | None = None  # wired after construction
        self.held_during_get: list[bool] = []
        self.held_during_put: list[bool] = []
        self.puts: list[tuple[str, str]] = []

    def get(self, prompt, params):
        assert self.lock is not None
        self.held_during_get.append(self.lock.locked())
        return None

    def put(self, prompt, params, response):
        assert self.lock is not None
        self.held_during_put.append(self.lock.locked())
        self.puts.append((prompt, response))


class TestLockDisciplineRegressions:
    """Pinned regressions for the repro-lint lock-discipline fixes."""

    def test_store_writes_happen_outside_the_scheduler_lock(self):
        store = LockProbeStore()
        scheduler = RequestScheduler(model=CountingModel(), store=store)
        store.lock = scheduler._lock
        futures = [scheduler.submit(p) for p in ("a", "b", "c")]
        scheduler._drain_once()
        assert [f.result(timeout=5.0) for f in futures] == [
            "ans:a:0",
            "ans:b:0",
            "ans:c:0",
        ]
        # Write-through landed for every settled request...
        assert sorted(p for p, _ in store.puts) == ["a", "b", "c"]
        # ...and never while the scheduler lock was held.
        assert store.held_during_put == [False, False, False]
        # The admission-time read IS under the lock (explained allowlist
        # entry in scheduler.py): pin that too, so a future refactor that
        # moves it cannot silently invalidate the suppression comment.
        assert store.held_during_get == [True, True, True]

    def test_configure_partial_update_preserves_other_knobs(self):
        scheduler = RequestScheduler(
            model=CountingModel(), max_batch_size=8, max_wait=0.25, queue_depth=16
        )
        scheduler.configure(max_wait=0.5)
        assert scheduler.max_batch_size == 8
        assert scheduler.max_wait == 0.5
        assert scheduler.queue_depth == 16

    def test_configure_rejects_invalid_mix_without_mutating(self):
        scheduler = RequestScheduler(
            model=CountingModel(), max_batch_size=8, max_wait=0.25, queue_depth=16
        )
        with pytest.raises(ConfigurationError):
            scheduler.configure(max_wait=-1.0)
        assert (
            scheduler.max_batch_size,
            scheduler.max_wait,
            scheduler.queue_depth,
        ) == (8, 0.25, 16)

    def test_lockcheck_instrumentation_is_active_in_this_module(self):
        # This module is in lockcheck's INSTRUMENTED_MODULES: every
        # threading.Lock created here is the TSan-lite wrapper, so the
        # whole scheduler suite doubles as a lock-order/guarded-attr test.
        scheduler = RequestScheduler(model=CountingModel())
        assert type(scheduler._lock).__name__ == "InstrumentedLock"


class TestDrainersAndAsyncSubmit:
    """The serving-layer additions: background drainers, fail-fast submit,
    and the asyncio bridge (``submit_async``)."""

    def test_on_full_fail_raises_instead_of_blocking(self):
        scheduler = RequestScheduler(CountingModel(), queue_depth=1)
        first = scheduler.submit("a")  # fills the queue
        with pytest.raises(SchedulerSaturatedError, match="admission queue"):
            scheduler.submit("b", on_full="fail")
        # The refused request left no residue: draining yields only "a".
        assert scheduler.wait([first]) == ["ans:a:0"]
        assert scheduler.scheduler_stats.n_enqueued == 1

    def test_drainer_resolves_futures_without_caller_participation(self):
        model = CountingModel()
        scheduler = RequestScheduler(model)
        scheduler.start_drainers(1)
        try:
            future = scheduler.submit("a")
            # The caller never drains: the background thread must.
            assert future.result(timeout=10.0) == "ans:a:0"
            assert model.calls == ["a"]
        finally:
            scheduler.stop_drainers()

    def test_stop_drainers_flushes_the_pending_queue(self):
        model = GatedModel()
        scheduler = RequestScheduler(model, max_batch_size=1)
        scheduler.start_drainers(1)
        futures = [scheduler.submit(p) for p in ("a", "b", "c")]
        assert model.started.wait(timeout=10.0)
        model.release.set()
        # stop_drainers must not strand queued requests: the drain loop
        # empties the queue before exiting.
        scheduler.stop_drainers()
        assert sorted(f.result(timeout=10.0) for f in futures) == [
            "ans:a:0",
            "ans:b:0",
            "ans:c:0",
        ]

    def test_drainer_lifecycle_validation(self):
        scheduler = RequestScheduler(CountingModel())
        with pytest.raises(ConfigurationError, match="count"):
            scheduler.start_drainers(0)
        scheduler.start_drainers(2)
        try:
            with pytest.raises(ConfigurationError, match="already running"):
                scheduler.start_drainers(1)
        finally:
            scheduler.stop_drainers()
        # A stopped scheduler can start a fresh pool.
        scheduler.start_drainers(1)
        scheduler.stop_drainers()

    def test_submit_async_resolves_on_the_event_loop(self):
        model = CountingModel()
        scheduler = RequestScheduler(model)
        scheduler.start_drainers(1)
        try:

            async def go() -> list[str]:
                futures = [
                    scheduler.submit_async(p) for p in ("x", "y", "x")
                ]
                return list(await asyncio.gather(*futures))

            assert asyncio.run(go()) == ["ans:x:0", "ans:y:0", "ans:x:0"]
            # The duplicate coalesced: only two prompts reached the model.
            assert sorted(model.calls) == ["x", "y"]
        finally:
            scheduler.stop_drainers()

    def test_submit_async_propagates_saturation_not_a_block(self):
        scheduler = RequestScheduler(CountingModel(), queue_depth=1)
        first = scheduler.submit("a")

        async def go() -> None:
            with pytest.raises(SchedulerSaturatedError):
                await scheduler.submit_async("b")

        asyncio.run(go())
        assert scheduler.wait([first]) == ["ans:a:0"]
