"""Unit tests for rule-based label remapping."""

from __future__ import annotations

import pytest

from repro.core.rules import (
    AMSTR_RULES,
    D4_RULES,
    PUBCHEM_RULES,
    SOTAB_27_RULES,
    ColumnRule,
    RuleSet,
    get_ruleset,
    list_rulesets,
)
from repro.core.table import Column


class TestColumnRule:
    def test_matches_when_fraction_met(self):
        rule = ColumnRule("digits", lambda v: v.isdigit(), min_fraction=0.6)
        assert rule.matches(Column(values=["1", "2", "3", "x"]))
        assert not rule.matches(Column(values=["1", "x", "y", "z"]))

    def test_empty_column_never_matches(self):
        rule = ColumnRule("digits", lambda v: True)
        assert not rule.matches(Column(values=["", "  "]))


class TestRuleSet:
    def test_apply_respects_label_set(self):
        ruleset = RuleSet(
            name="demo",
            rules=[ColumnRule("digits", lambda v: v.isdigit(), min_fraction=0.9)],
        )
        column = Column(values=["1", "2", "3"])
        assert ruleset.apply(column, ["digits", "other"]) == "digits"
        # The rule's label is outside the provided label set -> no assignment.
        assert ruleset.apply(column, ["other"]) is None

    def test_covered_labels_deduplicated(self):
        ruleset = RuleSet(
            name="demo",
            rules=[
                ColumnRule("a", lambda v: True),
                ColumnRule("a", lambda v: False),
                ColumnRule("b", lambda v: True),
            ],
        )
        assert ruleset.covered_labels == ["a", "b"]


class TestBenchmarkRuleSets:
    def test_registry_names(self):
        assert set(list_rulesets()) == {
            "sotab-27", "sotab-91", "d4-20", "amstr-56", "pubchem-20",
        }
        assert get_ruleset("sotab-27") is SOTAB_27_RULES
        assert get_ruleset("unknown-benchmark") is None

    def test_rule_label_counts_match_table2(self):
        # Table 2: SOTAB 5 labels, D4 9, Amstr 2, Pubchem 5.
        assert len(SOTAB_27_RULES.covered_labels) == 5
        assert len(D4_RULES.covered_labels) == 9
        assert len(AMSTR_RULES.covered_labels) == 2
        assert len(PUBCHEM_RULES.covered_labels) == 5

    def test_sotab_url_rule(self, url_column):
        assert SOTAB_27_RULES.apply(url_column, ["url", "text"]) == "url"

    def test_sotab_boolean_rule(self):
        column = Column(values=["true", "false", "true", "yes"])
        assert SOTAB_27_RULES.apply(column, ["boolean", "text"]) == "boolean"

    def test_d4_dbn_rule(self):
        column = Column(values=["01M539", "13K430", "28Q440"])
        assert D4_RULES.apply(column, list(column.values) + ["school-dbn"]) == "school-dbn"

    def test_d4_month_rule(self):
        column = Column(values=["January", "March", "July", "October"])
        assert D4_RULES.apply(column, ["month", "color"]) == "month"

    def test_pubchem_issn_and_inchi_rules(self):
        issn = Column(values=["1234-5678", "0001-123X", "4567-8901"])
        assert PUBCHEM_RULES.apply(issn, ["journal issn", "chemical"]) == "journal issn"
        inchi = Column(values=["InChI=1S/C9H8O4/c1-6(10)13-8", "InChI=1S/C2H6O/c1-2-3"])
        assert (
            PUBCHEM_RULES.apply(inchi, ["inchi (international chemical identifier)", "smiles"])
            == "inchi (international chemical identifier)"
        )

    def test_amstr_headline_rule(self):
        column = Column(values=["WHEAT PRICES RISE SHARPLY", "FIRE DESTROYS WAREHOUSE DISTRICT"])
        assert AMSTR_RULES.apply(column, ["headline", "newspaper"]) == "headline"

    def test_rules_do_not_fire_on_prose(self):
        column = Column(values=["the meeting was adjourned after a long debate"])
        assert SOTAB_27_RULES.apply(column, ["url", "boolean"]) is None
        assert PUBCHEM_RULES.apply(column, ["journal issn"]) is None
