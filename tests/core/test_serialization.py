"""Unit tests for prompt serialization (styles, overflow, numeric restriction)."""

from __future__ import annotations

import pytest

from repro.core.serialization import (
    PromptSerializer,
    PromptStyle,
    detect_numeric_context,
    join_classnames,
    join_context,
    prompt_style_from_name,
)
from repro.exceptions import ConfigurationError, SerializationError
from repro.llm.tokenizer import SimpleTokenizer

LABELS = ["state", "person", "url", "number"]
CONTEXT = ["Alaska", "Colorado", "Kentucky"]


class TestHelpers:
    def test_join_context_skips_blanks(self):
        assert join_context(["a", " ", "b"]) == "a, b"

    def test_join_classnames(self):
        assert join_classnames(["a", "b"]) == "a, b"

    def test_detect_numeric_context(self):
        assert detect_numeric_context(["550mm", "608mm"])
        assert detect_numeric_context(["1", "2.5"])
        assert not detect_numeric_context(["Alaska", "42"])
        assert not detect_numeric_context([])

    def test_prompt_style_from_name(self):
        assert prompt_style_from_name("s") is PromptStyle.S
        with pytest.raises(ConfigurationError):
            prompt_style_from_name("Z")


class TestSerialization:
    @pytest.mark.parametrize("style", PromptStyle.zero_shot_styles())
    def test_every_style_includes_context_and_labels(self, style):
        serializer = PromptSerializer(style=style, context_window=2048)
        prompt = serializer.serialize(CONTEXT, LABELS)
        assert "Alaska" in prompt.text
        for label in LABELS:
            assert label in prompt.text
        assert prompt.style is style
        assert not prompt.truncated

    def test_labels_are_sorted_by_default(self):
        serializer = PromptSerializer(style=PromptStyle.S)
        prompt = serializer.serialize(CONTEXT, ["zebra", "apple"])
        assert prompt.label_set == ("apple", "zebra")
        assert prompt.text.index("apple") < prompt.text.index("zebra")

    def test_label_order_preserved_when_sorting_disabled(self):
        serializer = PromptSerializer(style=PromptStyle.S, sort_labels=False)
        prompt = serializer.serialize(CONTEXT, ["zebra", "apple"])
        assert prompt.label_set == ("zebra", "apple")

    def test_finetuned_style_omits_label_set(self):
        serializer = PromptSerializer(style=PromptStyle.FINETUNED)
        prompt = serializer.serialize(CONTEXT, LABELS)
        assert "state" not in prompt.text
        assert prompt.text.startswith("INSTRUCTION:")
        assert prompt.text.rstrip().endswith("CATEGORY:")

    def test_numeric_restriction_applies_only_to_numeric_context(self):
        serializer = PromptSerializer(
            style=PromptStyle.S, numeric_labels=["number"],
        )
        numeric_prompt = serializer.serialize(["550mm", "608mm"], LABELS)
        assert numeric_prompt.numeric_restricted
        assert numeric_prompt.label_set == ("number",)
        text_prompt = serializer.serialize(CONTEXT, LABELS)
        assert not text_prompt.numeric_restricted
        assert set(text_prompt.label_set) == set(LABELS)

    def test_overflow_truncates_context_but_keeps_labels(self):
        serializer = PromptSerializer(style=PromptStyle.S, context_window=120)
        long_context = [f"value number {i} with some extra words" for i in range(200)]
        prompt = serializer.serialize(long_context, LABELS)
        assert prompt.truncated
        assert prompt.token_count <= 120
        for label in LABELS:
            assert label in prompt.text

    def test_impossible_window_raises(self):
        serializer = PromptSerializer(style=PromptStyle.K, context_window=10)
        with pytest.raises(SerializationError):
            serializer.serialize(CONTEXT, LABELS)

    def test_invalid_context_window_rejected(self):
        with pytest.raises(ConfigurationError):
            PromptSerializer(context_window=0)

    def test_style_accepts_string_names(self):
        serializer = PromptSerializer(style="b")
        assert serializer.style is PromptStyle.B
        with pytest.raises(ConfigurationError):
            PromptSerializer(style="nonsense")

    def test_table_at_once_serialization_mentions_every_column(self):
        serializer = PromptSerializer(style=PromptStyle.K, context_window=100000)
        prompt = serializer.serialize_table_at_once(
            [["a", "b"], ["1", "2"], ["x", "y"]], LABELS
        )
        assert "column 0" in prompt.text
        assert "column 2" in prompt.text

    def test_token_count_reported(self):
        serializer = PromptSerializer(style=PromptStyle.S)
        prompt = serializer.serialize(CONTEXT, LABELS)
        assert prompt.token_count > 0


class SuperAdditiveTokenizer(SimpleTokenizer):
    """Adversarial tokenizer: counts are not additive across the join.

    Rendering context into the skeleton costs ``join_penalty`` extra tokens
    that neither half carries alone — the shape of a real BPE tokenizer whose
    merges differ once the strings are concatenated.  The old budget logic
    (window - skeleton) assumed additivity and could emit prompts whose final
    ``token_count`` exceeded the context window.
    """

    def __init__(self, join_penalty: int = 12) -> None:
        self.join_penalty = join_penalty

    def count(self, text: str) -> int:
        base = super().count(text)
        # The penalty only fires on a fully rendered prompt: instruction
        # skeleton AND non-empty context present.
        if "Column:" in text and "Classes:" in text:
            rendered_context = text.split("Column:", 1)[1].split(". Classes:", 1)[0]
            if rendered_context.strip():
                return base + self.join_penalty
        return base


class TestPostRenderOverflowGuard:
    def test_nonadditive_tokenizer_cannot_overflow_window(self):
        tokenizer = SuperAdditiveTokenizer(join_penalty=12)
        window = 60
        serializer = PromptSerializer(
            style=PromptStyle.S, context_window=window, tokenizer=tokenizer
        )
        # Sized so skeleton + context fits the naive budget but the rendered
        # prompt overflows by the join penalty.
        context = [f"value{i}" for i in range(40)]
        prompt = serializer.serialize(context, LABELS)
        assert prompt.token_count <= window
        assert tokenizer.count(prompt.text) <= window
        assert prompt.truncated

    def test_additive_tokenizer_behaviour_unchanged(self):
        window = 60
        baseline = PromptSerializer(style=PromptStyle.S, context_window=window)
        adversarial = PromptSerializer(
            style=PromptStyle.S,
            context_window=window,
            tokenizer=SuperAdditiveTokenizer(join_penalty=0),
        )
        context = [f"value{i}" for i in range(40)]
        assert baseline.serialize(context, LABELS).text == adversarial.serialize(
            context, LABELS
        ).text

    def test_huge_penalty_degrades_to_skeleton_not_overflow(self):
        # Even when any non-empty context overflows, serialization must not
        # emit an over-window prompt: the context is dropped entirely.
        tokenizer = SuperAdditiveTokenizer(join_penalty=1000)
        window = 60
        serializer = PromptSerializer(
            style=PromptStyle.S, context_window=window, tokenizer=tokenizer
        )
        prompt = serializer.serialize(["alpha", "beta"], LABELS)
        assert prompt.token_count <= window
        assert prompt.truncated

    def test_every_zero_shot_style_respects_window(self):
        tokenizer = SuperAdditiveTokenizer(join_penalty=7)
        context = [f"value{i}" for i in range(60)]
        for style in PromptStyle.zero_shot_styles():
            serializer = PromptSerializer(
                style=style, context_window=120, tokenizer=tokenizer
            )
            prompt = serializer.serialize(context, LABELS)
            assert tokenizer.count(prompt.text) <= 120, style
