"""Unit tests for prompt serialization (styles, overflow, numeric restriction)."""

from __future__ import annotations

import pytest

from repro.core.serialization import (
    PromptSerializer,
    PromptStyle,
    detect_numeric_context,
    join_classnames,
    join_context,
    prompt_style_from_name,
)
from repro.exceptions import ConfigurationError, SerializationError

LABELS = ["state", "person", "url", "number"]
CONTEXT = ["Alaska", "Colorado", "Kentucky"]


class TestHelpers:
    def test_join_context_skips_blanks(self):
        assert join_context(["a", " ", "b"]) == "a, b"

    def test_join_classnames(self):
        assert join_classnames(["a", "b"]) == "a, b"

    def test_detect_numeric_context(self):
        assert detect_numeric_context(["550mm", "608mm"])
        assert detect_numeric_context(["1", "2.5"])
        assert not detect_numeric_context(["Alaska", "42"])
        assert not detect_numeric_context([])

    def test_prompt_style_from_name(self):
        assert prompt_style_from_name("s") is PromptStyle.S
        with pytest.raises(ConfigurationError):
            prompt_style_from_name("Z")


class TestSerialization:
    @pytest.mark.parametrize("style", PromptStyle.zero_shot_styles())
    def test_every_style_includes_context_and_labels(self, style):
        serializer = PromptSerializer(style=style, context_window=2048)
        prompt = serializer.serialize(CONTEXT, LABELS)
        assert "Alaska" in prompt.text
        for label in LABELS:
            assert label in prompt.text
        assert prompt.style is style
        assert not prompt.truncated

    def test_labels_are_sorted_by_default(self):
        serializer = PromptSerializer(style=PromptStyle.S)
        prompt = serializer.serialize(CONTEXT, ["zebra", "apple"])
        assert prompt.label_set == ("apple", "zebra")
        assert prompt.text.index("apple") < prompt.text.index("zebra")

    def test_label_order_preserved_when_sorting_disabled(self):
        serializer = PromptSerializer(style=PromptStyle.S, sort_labels=False)
        prompt = serializer.serialize(CONTEXT, ["zebra", "apple"])
        assert prompt.label_set == ("zebra", "apple")

    def test_finetuned_style_omits_label_set(self):
        serializer = PromptSerializer(style=PromptStyle.FINETUNED)
        prompt = serializer.serialize(CONTEXT, LABELS)
        assert "state" not in prompt.text
        assert prompt.text.startswith("INSTRUCTION:")
        assert prompt.text.rstrip().endswith("CATEGORY:")

    def test_numeric_restriction_applies_only_to_numeric_context(self):
        serializer = PromptSerializer(
            style=PromptStyle.S, numeric_labels=["number"],
        )
        numeric_prompt = serializer.serialize(["550mm", "608mm"], LABELS)
        assert numeric_prompt.numeric_restricted
        assert numeric_prompt.label_set == ("number",)
        text_prompt = serializer.serialize(CONTEXT, LABELS)
        assert not text_prompt.numeric_restricted
        assert set(text_prompt.label_set) == set(LABELS)

    def test_overflow_truncates_context_but_keeps_labels(self):
        serializer = PromptSerializer(style=PromptStyle.S, context_window=120)
        long_context = [f"value number {i} with some extra words" for i in range(200)]
        prompt = serializer.serialize(long_context, LABELS)
        assert prompt.truncated
        assert prompt.token_count <= 120
        for label in LABELS:
            assert label in prompt.text

    def test_impossible_window_raises(self):
        serializer = PromptSerializer(style=PromptStyle.K, context_window=10)
        with pytest.raises(SerializationError):
            serializer.serialize(CONTEXT, LABELS)

    def test_invalid_context_window_rejected(self):
        with pytest.raises(ConfigurationError):
            PromptSerializer(context_window=0)

    def test_style_accepts_string_names(self):
        serializer = PromptSerializer(style="b")
        assert serializer.style is PromptStyle.B
        with pytest.raises(ConfigurationError):
            PromptSerializer(style="nonsense")

    def test_table_at_once_serialization_mentions_every_column(self):
        serializer = PromptSerializer(style=PromptStyle.K, context_window=100000)
        prompt = serializer.serialize_table_at_once(
            [["a", "b"], ["1", "2"], ["x", "y"]], LABELS
        )
        assert "column 0" in prompt.text
        assert "column 2" in prompt.text

    def test_token_count_reported(self):
        serializer = PromptSerializer(style=PromptStyle.S)
        prompt = serializer.serialize(CONTEXT, LABELS)
        assert prompt.token_count > 0
