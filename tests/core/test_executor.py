"""Executor tests: golden equivalence, edge cases, and failure modes.

The golden label lists below were captured from the PRE-refactor
``annotate_column`` / ``annotate_columns`` implementations (commit 6c0124c)
on fixed benchmark seeds.  They pin the acceptance criterion that the
plan/execute refactor changes no labels: sequential and batched execution
must stay bit-identical to the historical code, and the concurrent executor
must produce the same labels for the pure bundled backends.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.executor import (
    BatchedExecutor,
    ConcurrentExecutor,
    ProcessExecutor,
    SequentialExecutor,
    get_executor,
    resolve_executor,
)
from repro.core.pipeline import ArcheType, ArcheTypeConfig
from repro.core.remapping import NULL_LABEL
from repro.core.rules import SOTAB_27_RULES
from repro.core.table import Column
from repro.datasets.registry import load_benchmark
from repro.exceptions import ConfigurationError
from repro.llm.base import GenerationParams, LanguageModel

LABELS = ["state", "person", "url", "number", "text"]

#: Labels produced by the pre-refactor pipeline for
#: load_benchmark("sotab-27", n_columns=60, seed=5) with
#: ArcheTypeConfig(model="gpt", sample_size=5, seed=0); sequential and
#: batched (batch_size=7) paths agreed bit-for-bit.
GOLDEN_SOTAB_GPT = [
    'product', 'streetaddress', 'url', 'currency', 'product', 'number',
    'time', 'category', 'category', 'boolean', 'product', 'zipcode',
    'telephone', 'streetaddress', 'organization', 'category',
    'streetaddress', 'currency', 'weight', 'category', 'price', 'person',
    'time', 'person', 'url', 'time', 'time', 'category', 'category',
    'creativework', 'telephone', 'country', 'product', 'streetaddress',
    'streetaddress', 'time', 'date', 'url', 'time', 'date', 'category',
    'category', 'price', 'number', 'weight', 'zipcode', 'coordinates',
    'person', 'creativework', 'person', 'boolean', 'time', 'number',
    'telephone', 'category', 'date', 'date', 'category', 'company', 'weight',
]

#: Labels produced by the pre-refactor batched pipeline for
#: load_benchmark("sotab-27", n_columns=40, seed=13) with
#: ArcheTypeConfig(model="t5", sample_size=5, seed=2, ruleset=SOTAB_27_RULES).
GOLDEN_SOTAB_T5_RULES = [
    'product', 'url', 'telephone', 'language', 'creativework', 'time',
    'product', 'url', 'boolean', 'country', 'age', 'company', 'gender',
    'gender', 'email', 'currency', 'number', 'date', 'product', 'company',
    'date', 'date', 'date', 'product', 'telephone', 'number',
    'creativework', 'jobposting', 'company', 'time', 'time', 'country',
    'gender', 'time', 'zipcode', 'url', 'sportsteam', 'organization',
    'organization', 'person',
]


def _golden_benchmark():
    return load_benchmark("sotab-27", n_columns=60, seed=5)


def _golden_annotator(benchmark) -> ArcheType:
    return ArcheType(ArcheTypeConfig(
        model="gpt", label_set=benchmark.label_set, sample_size=5, seed=0,
    ))


class TestGoldenEquivalence:
    """The refactored pipeline reproduces pre-refactor labels exactly."""

    def test_sequential_matches_pre_refactor_golden(self):
        benchmark = _golden_benchmark()
        annotator = _golden_annotator(benchmark)
        labels = [
            annotator.annotate_column(bc.column).label for bc in benchmark.columns
        ]
        assert labels == GOLDEN_SOTAB_GPT

    def test_batched_matches_pre_refactor_golden(self):
        benchmark = _golden_benchmark()
        annotator = _golden_annotator(benchmark)
        results = annotator.annotate_columns(
            [bc.column for bc in benchmark.columns], batch_size=7
        )
        assert [r.label for r in results] == GOLDEN_SOTAB_GPT

    def test_rules_variant_matches_pre_refactor_golden(self):
        benchmark = load_benchmark("sotab-27", n_columns=40, seed=13)
        annotator = ArcheType(ArcheTypeConfig(
            model="t5", label_set=benchmark.label_set, sample_size=5, seed=2,
            ruleset=SOTAB_27_RULES,
        ))
        results = annotator.annotate_columns([bc.column for bc in benchmark.columns])
        assert [r.label for r in results] == GOLDEN_SOTAB_T5_RULES

    def test_concurrent_matches_golden_label_multiset(self):
        """Acceptance: >= 4 workers produce the same label multiset."""
        benchmark = _golden_benchmark()
        annotator = _golden_annotator(benchmark)
        results = annotator.annotate_columns(
            [bc.column for bc in benchmark.columns],
            executor="concurrent",
            workers=4,
        )
        assert Counter(r.label for r in results) == Counter(GOLDEN_SOTAB_GPT)
        # The bundled backends are pure, so ordering is in fact identical too.
        assert [r.label for r in results] == GOLDEN_SOTAB_GPT

    def test_stream_matches_pre_refactor_golden(self):
        benchmark = _golden_benchmark()
        annotator = _golden_annotator(benchmark)
        labels = [
            r.label
            for r in annotator.annotate_stream(
                (bc.column for bc in benchmark.columns), chunk_size=13
            )
        ]
        assert labels == GOLDEN_SOTAB_GPT


class TestExecutorEdgeCases:
    """Edge cases the refactor must preserve (ISSUE 2 satellite)."""

    def _annotator(self, **overrides) -> ArcheType:
        return ArcheType(ArcheTypeConfig(model="gpt", label_set=LABELS, **overrides))

    def test_empty_column_short_circuit_inside_batched_mode(self):
        empty = Column(values=["", "   ", ""])
        state = Column(values=["Alaska", "Colorado", "Kentucky", "Nevada", "Texas"])
        for batch_size in (None, 1, 2):
            results = self._annotator().annotate_columns(
                [empty, state, empty], batch_size=batch_size
            )
            assert results[0].label == NULL_LABEL
            assert results[0].strategy == "empty-column"
            assert results[1].label == "state"
            assert results[2].label == NULL_LABEL

    def test_all_columns_short_circuit_issues_no_queries(self):
        empty = Column(values=[""])
        annotator = self._annotator()
        results = annotator.annotate_columns([empty, empty], batch_size=3)
        assert [r.label for r in results] == [NULL_LABEL, NULL_LABEL]
        assert annotator.query_count == 0

    @pytest.mark.parametrize("batch_size", [1, 3, 99])
    def test_chunk_boundaries(self, batch_size):
        """chunk=1, chunk mid-split and chunk>len all agree with unchunked."""
        benchmark = load_benchmark("d4-20", n_columns=12, seed=21)
        columns = [bc.column for bc in benchmark.columns]

        def annotate(**kwargs):
            annotator = ArcheType(ArcheTypeConfig(
                model="gpt", label_set=benchmark.label_set, seed=0,
            ))
            return [r.label for r in annotator.annotate_columns(columns, **kwargs)]

        assert annotate(batch_size=batch_size) == annotate(batch_size=None)

    def test_rule_hits_interleaved_with_queried_columns(self):
        url = Column(values=["http://a.com/x", "http://b.org/y", "http://c.net/z"])
        state = Column(values=["Alaska", "Colorado", "Kentucky", "Nevada", "Texas"])
        empty = Column(values=[""])
        workload = [url, state, empty, url, state]
        for executor in ("sequential", "batched", "concurrent"):
            annotator = self._annotator(ruleset=SOTAB_27_RULES)
            results = annotator.annotate_columns(workload, executor=executor)
            assert [r.label for r in results] == \
                ["url", "state", NULL_LABEL, "url", "state"]
            assert [r.rule_applied for r in results] == \
                [True, False, False, True, False]

    def test_executor_object_can_be_passed_directly(self):
        state = Column(values=["Alaska", "Colorado", "Kentucky", "Nevada", "Texas"])
        annotator = self._annotator()
        results = annotator.annotate_columns(
            [state], executor=BatchedExecutor(batch_size=2)
        )
        assert results[0].label == "state"


class TestExecutorResolution:
    def test_get_executor_names(self):
        assert isinstance(get_executor("sequential"), SequentialExecutor)
        assert isinstance(get_executor("batched", batch_size=5), BatchedExecutor)
        concurrent = get_executor("concurrent", workers=8)
        assert isinstance(concurrent, ConcurrentExecutor)
        assert concurrent.workers == 8

    def test_get_executor_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_executor("warp-drive")

    def test_conflicting_batch_size_rejected_cleanly(self):
        """Knobs the named executor cannot honour are clean config errors."""
        with pytest.raises(ConfigurationError, match="batch_size=0"):
            get_executor("batched", batch_size=0)
        with pytest.raises(ConfigurationError, match="batch_size=0"):
            get_executor("concurrent", batch_size=0, workers=2)
        with pytest.raises(ConfigurationError, match="no effect"):
            get_executor("sequential", batch_size=5)
        with pytest.raises(ConfigurationError, match="executor instance"):
            resolve_executor(BatchedExecutor(batch_size=2), batch_size=5)
        # batch_size=0 with the sequential executor is consistent, not an error.
        assert isinstance(get_executor("sequential", batch_size=0),
                          SequentialExecutor)

    def test_resolve_defaults_preserve_batch_size_semantics(self):
        assert isinstance(resolve_executor(None, batch_size=0), SequentialExecutor)
        batched = resolve_executor(None, batch_size=7)
        assert isinstance(batched, BatchedExecutor)
        assert batched.batch_size == 7
        assert isinstance(resolve_executor(None), BatchedExecutor)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchedExecutor(batch_size=0)
        with pytest.raises(ConfigurationError):
            ConcurrentExecutor(workers=0)
        with pytest.raises(ConfigurationError):
            resolve_executor(3.14)  # type: ignore[arg-type]

    def test_workers_without_concurrent_executor_rejected(self):
        """workers must not be silently ignored on a single-threaded run."""
        with pytest.raises(ConfigurationError, match="concurrent or process"):
            resolve_executor(None, workers=8)
        with pytest.raises(ConfigurationError, match="concurrent or process"):
            get_executor("batched", workers=8)
        with pytest.raises(ConfigurationError, match="concurrent or process"):
            get_executor("sequential", workers=8)

    def test_get_executor_process(self):
        process = get_executor("process", workers=3)
        assert isinstance(process, ProcessExecutor)
        assert process.workers == 3
        # batch_size maps onto the per-worker chunk size, like the
        # concurrent executor's chunking knob.
        chunked = get_executor("process", workers=2, batch_size=9)
        assert isinstance(chunked, ProcessExecutor)
        assert chunked.chunk_size == 9
        with pytest.raises(ConfigurationError):
            ProcessExecutor(workers=0)


class ShortReturningModel(LanguageModel):
    """A miscounting backend: generate_batch silently drops the last answer."""

    name = "short-returning"
    context_window = 2048

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        return "state"

    def generate_batch(self, prompts, params=None) -> list[str]:
        return ["state"] * max(len(prompts) - 1, 0)


class TestShortReturningBackend:
    """Regression (ISSUE 2 satellite): a miscounting backend must fail loudly
    instead of silently dropping columns."""

    def _workload(self) -> list[Column]:
        return [
            Column(values=["Alaska", "Colorado", "Kentucky"]),
            Column(values=["Bob Smith", "Alice Jones", "Carol White"]),
            Column(values=["http://a.com", "http://b.org", "http://c.net"]),
        ]

    def test_batched_mode_raises(self):
        annotator = ArcheType(ArcheTypeConfig(
            model=ShortReturningModel(), label_set=LABELS, remapper="none",
        ))
        with pytest.raises(RuntimeError, match="completions for"):
            annotator.annotate_columns(self._workload())

    def test_batched_mode_raises_with_cache_disabled(self):
        annotator = ArcheType(ArcheTypeConfig(
            model=ShortReturningModel(), label_set=LABELS, remapper="none",
            query_cache_size=0,
        ))
        with pytest.raises(RuntimeError, match="completions for"):
            annotator.annotate_columns(self._workload())

    def test_concurrent_mode_raises(self):
        annotator = ArcheType(ArcheTypeConfig(
            model=ShortReturningModel(), label_set=LABELS, remapper="none",
        ))
        with pytest.raises(RuntimeError, match="completions for"):
            annotator.annotate_columns(
                self._workload(), executor="concurrent", workers=2
            )


class UnpicklableModel(LanguageModel):
    """A backend holding process-local state that cannot cross a fork."""

    name = "unpicklable"
    context_window = 2048

    def __init__(self) -> None:
        self.session = lambda prompt: "state"  # lambdas never pickle

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        return self.session(prompt)


class TestProcessExecutor:
    """ISSUE 7 tentpole: worker processes, bit-identical labels, truthful
    accounting."""

    def test_process_matches_pre_refactor_golden(self):
        """Acceptance: bit-identical labels to SequentialExecutor."""
        benchmark = _golden_benchmark()
        annotator = _golden_annotator(benchmark)
        results = annotator.annotate_columns(
            [bc.column for bc in benchmark.columns],
            executor="process",
            workers=4,
        )
        assert [r.label for r in results] == GOLDEN_SOTAB_GPT

    def test_worker_accounting_absorbed_into_parent(self):
        """query_count and stage stats must cover worker-side model calls."""
        benchmark = _golden_benchmark()
        reference = _golden_annotator(benchmark)
        workload = [bc.column for bc in benchmark.columns]
        [reference.annotate_column(column) for column in workload]

        annotator = _golden_annotator(benchmark)
        annotator.annotate_columns(workload, executor="process", workers=3)
        assert annotator.query_count == reference.query_count
        stages = {row["stage"]: row for row in annotator.stats.as_rows()}
        assert stages["query"]["calls"] > 0
        assert stages["remap"]["calls"] > 0

    def test_pool_reused_across_stream_chunks(self):
        """annotate_stream executes chunk-at-a-time through ONE pool."""
        benchmark = _golden_benchmark()
        annotator = _golden_annotator(benchmark)
        executor = ProcessExecutor(workers=2)
        with executor:
            labels = [
                r.label
                for r in annotator.annotate_stream(
                    (bc.column for bc in benchmark.columns),
                    chunk_size=20,
                    executor=executor,
                )
            ]
            assert labels == GOLDEN_SOTAB_GPT
            assert executor._pool is not None

    def test_unpicklable_model_is_a_clean_config_error(self):
        annotator = ArcheType(ArcheTypeConfig(
            model=UnpicklableModel(), label_set=LABELS, remapper="none",
        ))
        workload = [Column(values=["Alaska", "Colorado", "Kentucky"])]
        with pytest.raises(ConfigurationError, match="pickle"):
            annotator.annotate_columns(workload, executor="process", workers=2)

    def test_config_executor_and_workers_defaults(self):
        """ArcheTypeConfig(executor=..., workers=...) applies when the call
        site passes neither."""
        benchmark = load_benchmark("sotab-27", n_columns=12, seed=5)
        reference = ArcheType(ArcheTypeConfig(
            model="gpt", label_set=benchmark.label_set, sample_size=5, seed=0,
        ))
        configured = ArcheType(ArcheTypeConfig(
            model="gpt", label_set=benchmark.label_set, sample_size=5, seed=0,
            executor="process", workers=2,
        ))
        workload = [bc.column for bc in benchmark.columns]
        expected = [reference.annotate_column(column).label for column in workload]
        assert [r.label for r in configured.annotate_columns(workload)] == expected
        # An explicit executor still overrides the config default (fresh
        # annotator: each planned column advances the RNG stream).
        override = ArcheType(ArcheTypeConfig(
            model="gpt", label_set=benchmark.label_set, sample_size=5, seed=0,
            executor="process", workers=2,
        ))
        assert [
            r.label
            for r in override.annotate_columns(workload, executor="sequential")
        ] == expected
