"""Unit tests for the planning half of the plan/execute pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import ArcheType, ArcheTypeConfig
from repro.core.plan import (
    STAGE_QUERY,
    STAGE_RULES,
    STAGE_SAMPLE,
    STAGE_SERIALIZE,
    AnnotationResult,
    ColumnPlan,
    PipelineStats,
)
from repro.core.remapping import NULL_LABEL
from repro.core.rules import SOTAB_27_RULES
from repro.core.table import Column

LABELS = ["state", "person", "url", "number", "text"]


def _annotator(**overrides) -> ArcheType:
    config = ArcheTypeConfig(model="gpt", label_set=LABELS, **overrides)
    return ArcheType(config)


class TestColumnPlan:
    def test_pending_plan_carries_prompt(self, state_column):
        annotator = _annotator()
        plan = annotator.plan_column(state_column)
        assert not plan.is_short_circuit
        assert plan.result is None
        assert plan.prompt is not None
        assert plan.sampled_values
        assert set(plan.prompt.label_set) == set(LABELS)

    def test_empty_column_short_circuits(self):
        annotator = _annotator()
        plan = annotator.plan_column(Column(values=["", "  "]))
        assert plan.is_short_circuit
        assert plan.result.label == NULL_LABEL
        assert plan.result.strategy == "empty-column"
        assert plan.prompt is None

    def test_rule_hit_short_circuits(self, url_column):
        annotator = _annotator(ruleset=SOTAB_27_RULES)
        plan = annotator.plan_column(url_column)
        assert plan.is_short_circuit
        assert plan.result.label == "url"
        assert plan.result.rule_applied
        assert plan.result.sampled_values  # sampling ran before the rule check

    def test_plan_is_immutable(self, state_column):
        plan = _annotator().plan_column(state_column)
        with pytest.raises(AttributeError):
            plan.position = 5  # type: ignore[misc]

    def test_plan_rejects_both_result_and_prompt(self, state_column):
        plan = _annotator().plan_column(state_column)
        result = AnnotationResult(
            label="state", raw_response="state", prompt=None,
            remapped=False, rule_applied=False, strategy="test",
        )
        with pytest.raises(ValueError):
            ColumnPlan(position=0, result=result, prompt=plan.prompt)
        with pytest.raises(ValueError):
            ColumnPlan(position=0)

    def test_planning_consumes_the_annotation_rng_stream(self, state_column):
        """plan_column and annotate_column are interchangeable in the stream."""
        planned = _annotator(seed=3)
        planned.plan_column(state_column)
        annotated = _annotator(seed=3)
        annotated.annotate_column(state_column)
        # After one column, both annotators' RNGs must be in the same state.
        assert (
            planned._rng.bit_generator.state["state"]
            == annotated._rng.bit_generator.state["state"]
        )

    def test_rules_do_not_perturb_the_rng_stream(self, url_column, state_column):
        """A rule hit consumes the same randomness as a queried column."""
        with_rules = _annotator(ruleset=SOTAB_27_RULES, seed=11)
        with_rules.annotate_column(url_column)
        plain = _annotator(seed=11)
        plain.annotate_column(url_column)
        assert (
            with_rules.annotate_column(state_column).label
            == plain.annotate_column(state_column).label
        )


class TestPipelineStats:
    def test_stages_accumulate(self, state_column):
        annotator = _annotator()
        annotator.annotate_column(state_column)
        snapshot = annotator.pipeline_stats.snapshot()
        assert snapshot[STAGE_SAMPLE]["calls"] == 1
        assert snapshot[STAGE_SERIALIZE]["calls"] == 1
        assert snapshot[STAGE_QUERY]["calls"] == 1
        assert snapshot[STAGE_QUERY]["seconds"] >= 0.0

    def test_rules_stage_timed_when_enabled(self, url_column):
        annotator = _annotator(ruleset=SOTAB_27_RULES)
        annotator.annotate_column(url_column)
        snapshot = annotator.pipeline_stats.snapshot()
        assert snapshot[STAGE_RULES]["calls"] == 1
        assert STAGE_QUERY not in snapshot  # rule hit: the model was never queried

    def test_query_hits_attributed(self):
        column = Column(values=["Alaska", "Colorado", "Kentucky"], name="state")
        annotator = _annotator(sampler="firstk")
        annotator.annotate_columns([column, column, column])
        snapshot = annotator.pipeline_stats.snapshot()
        # Duplicates submitted in one batch coalesce in flight; either way
        # they are attributed to the query stage as non-model-call hits.
        hits = (
            snapshot[STAGE_QUERY]["cache_hits"]
            + snapshot[STAGE_QUERY]["inflight_hits"]
        )
        assert hits >= 2

    def test_reset_stats_zeroes_everything(self, state_column):
        annotator = _annotator()
        annotator.annotate_column(state_column)
        assert annotator.query_count > 0
        assert annotator.pipeline_stats.total_seconds > 0
        annotator.reset_stats()
        assert annotator.query_count == 0
        assert annotator.cache_hit_count == 0
        assert annotator.pipeline_stats.snapshot() == {}

    def test_reset_keeps_the_response_cache(self, state_column):
        annotator = _annotator(sampler="firstk")
        annotator.annotate_column(state_column)
        annotator.reset_stats()
        annotator.annotate_column(state_column)
        # The second run is served from the surviving cache: zero new queries.
        assert annotator.query_count == 0
        assert annotator.cache_hit_count == 1

    def test_merge_and_rows(self):
        first = PipelineStats()
        first.record(STAGE_SAMPLE, seconds=0.5, calls=2)
        second = PipelineStats()
        second.record(STAGE_SAMPLE, seconds=0.25, calls=1, cache_hits=3)
        first.merge(second)
        snapshot = first.snapshot()
        assert snapshot[STAGE_SAMPLE]["calls"] == 3
        assert snapshot[STAGE_SAMPLE]["seconds"] == pytest.approx(0.75)
        assert snapshot[STAGE_SAMPLE]["cache_hits"] == 3
        rows = first.as_rows()
        assert rows[0]["stage"] == STAGE_SAMPLE

    def test_timed_context_manager(self):
        stats = PipelineStats()
        with stats.timed("custom", calls=4):
            np.zeros(10)
        assert stats.stage("custom").calls == 4
        assert stats.stage("custom").seconds >= 0.0
