"""Unit tests for the model-querying stage."""

from __future__ import annotations

from repro.core.querying import QueryEngine, QueryStats
from repro.llm.base import GenerationParams, LanguageModel


class EchoModel(LanguageModel):
    """Test double that records the prompts and params it receives."""

    name = "echo"
    context_window = 128

    def __init__(self) -> None:
        self.calls: list[tuple[str, GenerationParams]] = []

    def generate(self, prompt: str, params: GenerationParams | None = None) -> str:
        params = params or GenerationParams()
        self.calls.append((prompt, params))
        return f"echo:{params.resample_index}"


class TestQueryStats:
    def test_record_counts_queries_and_resamples(self):
        stats = QueryStats()
        stats.record("abc", resample_index=0)
        stats.record("abcdef", resample_index=2)
        assert stats.n_queries == 2
        assert stats.n_resamples == 1
        assert stats.total_prompt_chars == 9


class TestQueryEngine:
    def test_query_uses_default_params(self):
        model = EchoModel()
        engine = QueryEngine(model=model)
        assert engine.query("hello") == "echo:0"
        assert engine.stats.n_queries == 1
        assert model.calls[0][1].temperature == 0.0

    def test_requery_permutes_parameters(self):
        model = EchoModel()
        engine = QueryEngine(model=model)
        engine.query("hello")
        engine.requery("hello", attempt=2)
        _, permuted = model.calls[1]
        assert permuted.resample_index == 2
        assert permuted.temperature > 0.0
        assert engine.stats.n_resamples == 1

    def test_explicit_params_override_defaults(self):
        model = EchoModel()
        engine = QueryEngine(model=model, params=GenerationParams(temperature=0.5))
        engine.query("x", GenerationParams(temperature=1.5))
        assert model.calls[0][1].temperature == 1.5


class TestGenerationParams:
    def test_permuted_is_identity_for_zero(self):
        params = GenerationParams(temperature=0.3, top_p=0.9)
        assert params.permuted(0) == params

    def test_permuted_scales_temperature_and_caps(self):
        params = GenerationParams(temperature=0.4)
        one = params.permuted(1)
        two = params.permuted(2)
        assert one.temperature > params.temperature
        assert two.temperature > one.temperature
        assert params.permuted(10).temperature <= 2.0

    def test_permuted_adjusts_top_p_and_repetition(self):
        params = GenerationParams(top_p=1.0, repetition_penalty=1.0)
        moved = params.permuted(3)
        assert moved.top_p < 1.0
        assert moved.repetition_penalty > 1.0
        assert moved.resample_index == 3
