"""Unit tests for the persistent query store and run manifests."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.plan import AnnotationResult
from repro.core.store import (
    JSONLResponseStore,
    RunManifest,
    SQLiteResponseStore,
    generate_run_id,
    iter_manifest_rows,
    list_runs,
    open_store,
    params_key,
)
from repro.exceptions import ConfigurationError
from repro.llm.base import GenerationParams

STORE_KINDS = ["sqlite", "jsonl"]


def _open(kind: str, tmp_path):
    store = open_store(kind, tmp_path)
    assert store is not None
    return store


class TestParamsKey:
    def test_deterministic_and_compact(self):
        params = GenerationParams(temperature=0.5, resample_index=2)
        assert params_key(params) == params_key(
            GenerationParams(temperature=0.5, resample_index=2)
        )
        assert json.loads(params_key(params))["temperature"] == 0.5

    def test_distinguishes_parameters(self):
        assert params_key(GenerationParams()) != params_key(
            GenerationParams(resample_index=1)
        )


class TestOpenStore:
    def test_none_kind_disables_persistence(self, tmp_path):
        assert open_store("none", tmp_path) is None

    def test_unknown_kind_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            open_store("redis", tmp_path)

    def test_creates_cache_dir(self, tmp_path):
        nested = tmp_path / "a" / "b"
        store = open_store("sqlite", nested)
        assert nested.is_dir()
        store.close()

    def test_backend_classes(self, tmp_path):
        with open_store("sqlite", tmp_path / "s") as store:
            assert isinstance(store, SQLiteResponseStore)
        with open_store("jsonl", tmp_path / "j") as store:
            assert isinstance(store, JSONLResponseStore)


@pytest.mark.parametrize("kind", STORE_KINDS)
class TestResponseStoreContract:
    """Behaviour both backends must share (the parity suite)."""

    def test_round_trip(self, kind, tmp_path):
        with _open(kind, tmp_path) as store:
            params = GenerationParams()
            assert store.get("prompt", params) is None
            store.put("prompt", params, "answer")
            assert store.get("prompt", params) == "answer"
            assert len(store) == 1

    def test_params_distinguish_entries(self, kind, tmp_path):
        with _open(kind, tmp_path) as store:
            store.put("p", GenerationParams(), "cold")
            store.put("p", GenerationParams(resample_index=1), "resampled")
            assert store.get("p", GenerationParams()) == "cold"
            assert store.get("p", GenerationParams(resample_index=1)) == "resampled"
            assert len(store) == 2

    def test_append_only_first_write_wins(self, kind, tmp_path):
        with _open(kind, tmp_path) as store:
            store.put("p", GenerationParams(), "first")
            store.put("p", GenerationParams(), "second")
            assert store.get("p", GenerationParams()) == "first"
            assert len(store) == 1

    def test_persists_across_reopen(self, kind, tmp_path):
        with _open(kind, tmp_path) as store:
            store.put("p", GenerationParams(), "answer")
        with _open(kind, tmp_path) as store:
            assert store.get("p", GenerationParams()) == "answer"
            assert len(store) == 1

    def test_concurrent_writers_are_safe(self, kind, tmp_path):
        store = _open(kind, tmp_path)
        errors: list[Exception] = []

        def write(worker: int) -> None:
            try:
                for i in range(25):
                    store.put(f"prompt-{worker}-{i}", GenerationParams(), f"r{i}")
                    # Every worker also races on one shared key.
                    store.put("shared", GenerationParams(), f"from-{worker}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(store) == 8 * 25 + 1
        for worker in range(8):
            assert store.get(f"prompt-{worker}-0", GenerationParams()) == "r0"
        assert store.get("shared", GenerationParams()).startswith("from-")
        store.close()

    def test_unicode_and_newlines_round_trip(self, kind, tmp_path):
        with _open(kind, tmp_path) as store:
            prompt = "düsseldorf \n \"quoted\" \t 数"
            store.put(prompt, GenerationParams(), "naïve\nanswer")
        with _open(kind, tmp_path) as store:
            assert store.get(prompt, GenerationParams()) == "naïve\nanswer"


class TestJSONLCorruptionRecovery:
    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        with _open("jsonl", tmp_path) as store:
            store.put("good-1", GenerationParams(), "a")
            store.put("good-2", GenerationParams(), "b")
        path = tmp_path / "store.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"prompt": "half written", "params": "{\n')  # truncated
            handle.write('{"prompt": "typed wrong", "params": "{}", "response": 7}\n')
        with _open("jsonl", tmp_path) as store:
            assert store.get("good-1", GenerationParams()) == "a"
            assert store.get("good-2", GenerationParams()) == "b"
            assert len(store) == 2
            assert store.corrupt_entries_skipped == 3
            # The store stays writable after recovery.
            store.put("good-3", GenerationParams(), "c")
        with _open("jsonl", tmp_path) as store:
            assert store.get("good-3", GenerationParams()) == "c"

    def test_truncated_final_line_from_crash(self, tmp_path):
        with _open("jsonl", tmp_path) as store:
            store.put("complete", GenerationParams(), "kept")
        path = tmp_path / "store.jsonl"
        content = path.read_text(encoding="utf-8")
        line = json.dumps(
            {"prompt": "lost", "params": params_key(GenerationParams()),
             "response": "never flushed"},
        )
        path.write_text(content + line[: len(line) // 2], encoding="utf-8")
        with _open("jsonl", tmp_path) as store:
            assert store.get("complete", GenerationParams()) == "kept"
            assert store.get("lost", GenerationParams()) is None
            assert store.corrupt_entries_skipped == 1


def _result(label: str, raw: str | None = None) -> AnnotationResult:
    return AnnotationResult(
        label=label,
        raw_response=raw if raw is not None else label,
        prompt=None,
        remapped=False,
        rule_applied=False,
        strategy="test",
    )


class TestRunManifest:
    def test_create_record_load_round_trip(self, tmp_path):
        manifest = RunManifest.create(tmp_path, run_id="run-a",
                                      metadata={"benchmark": "sotab-27"})
        manifest.record(0, _result("person"))
        manifest.record(1, _result("city", raw="City."))
        manifest.close()

        loaded = RunManifest.load(tmp_path, "run-a")
        assert loaded.n_completed == 2
        assert loaded.metadata["benchmark"] == "sotab-27"
        assert loaded.get(0).label == "person"
        assert loaded.get(1).raw_response == "City."
        assert loaded.get(2) is None
        assert 1 in loaded and 5 not in loaded
        loaded.close()

    def test_record_is_idempotent_per_index(self, tmp_path):
        manifest = RunManifest.create(tmp_path, run_id="run-b")
        manifest.record(0, _result("first"))
        manifest.record(0, _result("second"))
        manifest.close()
        loaded = RunManifest.load(tmp_path, "run-b")
        assert loaded.get(0).label == "first"
        assert loaded.n_completed == 1
        loaded.close()

    def test_resumed_manifest_keeps_appending(self, tmp_path):
        manifest = RunManifest.create(tmp_path, run_id="run-c")
        manifest.record(0, _result("a"))
        manifest.close()
        resumed = RunManifest.load(tmp_path, "run-c")
        resumed.record(1, _result("b"))
        resumed.close()
        final = RunManifest.load(tmp_path, "run-c")
        assert final.completed_indices() == [0, 1]
        final.close()

    def test_load_missing_run_raises_with_available_runs(self, tmp_path):
        RunManifest.create(tmp_path, run_id="exists").close()
        with pytest.raises(ConfigurationError, match="exists"):
            RunManifest.load(tmp_path, "missing")

    def test_create_refuses_to_clobber_existing_run(self, tmp_path):
        RunManifest.create(tmp_path, run_id="dup").close()
        with pytest.raises(ConfigurationError, match="resume"):
            RunManifest.create(tmp_path, run_id="dup")

    def test_truncated_trailing_record_is_skipped(self, tmp_path):
        manifest = RunManifest.create(tmp_path, run_id="run-d")
        manifest.record(0, _result("kept"))
        manifest.close()
        path = tmp_path / "runs" / "run-d" / "manifest.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type":"result","i":1,"label":"lo')
        loaded = RunManifest.load(tmp_path, "run-d")
        assert loaded.completed_indices() == [0]
        assert loaded.corrupt_entries_skipped == 1
        loaded.close()

    def test_list_runs_and_iter_rows(self, tmp_path):
        assert list_runs(tmp_path) == []
        manifest = RunManifest.create(tmp_path, run_id="2026-run")
        manifest.record(1, _result("b"))
        manifest.record(0, _result("a"))
        manifest.close()
        assert list_runs(tmp_path) == ["2026-run"]
        rows = list(iter_manifest_rows(tmp_path, "2026-run"))
        assert [(i, r.label) for i, r in rows] == [(0, "a"), (1, "b")]

    def test_generated_run_ids_are_unique(self):
        ids = {generate_run_id() for _ in range(32)}
        assert len(ids) == 32
