"""Unit tests for extended-context feature selection (SS / TN / OC)."""

from __future__ import annotations

import pytest

from repro.core.features import (
    FeatureConfig,
    build_feature_strings,
    other_columns_feature,
    summary_statistics,
    table_name_feature,
)
from repro.core.table import Column, Table


class TestSummaryStatistics:
    def test_numeric_column_uses_values(self):
        stats = summary_statistics(["10", "20", "30"])
        assert stats is not None
        assert not stats.over_lengths
        assert stats.mean == pytest.approx(20.0)
        assert stats.minimum == 10.0
        assert stats.maximum == 30.0

    def test_non_numeric_column_uses_lengths(self):
        stats = summary_statistics(["ab", "abcd"])
        assert stats is not None
        assert stats.over_lengths
        assert stats.mean == pytest.approx(3.0)

    def test_empty_input_returns_none(self):
        assert summary_statistics([]) is None
        assert summary_statistics(["", "  "]) is None

    def test_formatting_rounds_to_two_decimals(self):
        stats = summary_statistics(["1", "2"])
        rendered = " ".join(stats.as_strings())
        assert "mean: 1.5" in rendered
        assert "min: 1" in rendered  # integers keep no decimal point

    def test_mixed_values_fall_back_to_lengths(self):
        stats = summary_statistics(["12", "abc"])
        assert stats.over_lengths


class TestFeatureConfig:
    def test_from_spec_round_trip(self):
        config = FeatureConfig.from_spec("CS+TN+SS")
        assert config.include_table_name and config.include_summary_stats
        assert not config.include_other_columns
        assert config.spec() == "CS+TN+SS"

    def test_from_spec_rejects_unknown_flags(self):
        with pytest.raises(ValueError):
            FeatureConfig.from_spec("CS+XX")

    def test_default_is_context_sample_only(self):
        assert FeatureConfig().spec() == "CS"


class TestFeatureAssembly:
    def test_table_name_feature(self, small_table):
        assert table_name_feature(small_table) == "TABLE NAME: demo_table.csv"
        assert table_name_feature(None) is None
        assert table_name_feature(Table()) is None

    def test_other_columns_feature_labels_source_columns(self, small_table):
        rendered = other_columns_feature(small_table, column_index=0, per_column=1)
        assert len(rendered) == 2
        assert rendered[0].startswith("col1: ")
        assert rendered[1].startswith("col2: ")

    def test_other_columns_feature_without_table(self):
        assert other_columns_feature(None, 0) == []

    def test_build_feature_strings_order(self, small_table):
        config = FeatureConfig.from_spec("CS+TN+SS+OC")
        strings = build_feature_strings(
            ["Alaska", "Nevada"], config, table=small_table, column_index=0,
            column=small_table[0],
        )
        assert strings[0].startswith("TABLE NAME:")
        assert "Alaska" in strings[1]
        assert any(s.startswith("len std:") or s.startswith("std:") for s in strings)
        assert any(s.startswith("col1:") for s in strings)

    def test_build_feature_strings_plain(self):
        strings = build_feature_strings(["a", "b"], FeatureConfig())
        assert strings == ["a", "b"]
