"""Unit tests for label remapping (no-op, contains, resample, similarity)."""

from __future__ import annotations

import pytest

from repro.core.remapping import (
    NULL_LABEL,
    ContainsRemapper,
    ContainsResampleRemapper,
    NoOpRemapper,
    ResampleRemapper,
    SimilarityRemapper,
    contains_match,
    exact_match,
    get_remapper,
    list_remappers,
    normalize,
    normalized_label_set,
)
from repro.exceptions import ConfigurationError

LABELS = ["state", "person", "url", "number", "educational organization"]


class TestMatchingHelpers:
    def test_normalize_strips_case_and_punctuation(self):
        assert normalize("  State. ") == "state"
        assert normalize("Street_Address") == "street address"

    def test_exact_match_is_case_insensitive(self):
        assert exact_match("STATE", LABELS) == "state"
        assert exact_match("region", LABELS) is None

    def test_contains_match_prefers_longest_label(self):
        answer = "an educational organization in new york"
        assert contains_match(answer, LABELS) == "educational organization"

    def test_contains_match_bidirectional(self):
        # Response contained in a label.
        assert contains_match("organization", LABELS) == "educational organization"
        assert contains_match("", LABELS) is None


class TestNoOpRemapper:
    def test_accepts_exact_matches_only(self):
        remapper = NoOpRemapper()
        assert remapper.remap("url", LABELS).label == "url"
        result = remapper.remap("a url column", LABELS)
        assert result.label == NULL_LABEL
        assert not result.recovered


class TestContainsRemapper:
    def test_recovers_verbose_answers(self):
        remapper = ContainsRemapper()
        result = remapper.remap("The column appears to contain url entries", LABELS)
        assert result.label == "url"
        assert result.remapped

    def test_returns_null_when_nothing_matches(self):
        result = ContainsRemapper().remap("wibble wobble", LABELS)
        assert result.label == NULL_LABEL


class TestResampleRemapper:
    def test_requeries_until_valid(self):
        answers = iter(["still wrong", "person"])
        remapper = ResampleRemapper(k=3)
        result = remapper.remap("not a label", LABELS, requery=lambda k: next(answers))
        assert result.label == "person"
        assert result.attempts == 2

    def test_gives_up_after_k_attempts(self):
        remapper = ResampleRemapper(k=2)
        result = remapper.remap("nope", LABELS, requery=lambda k: "still nope")
        assert result.label == NULL_LABEL
        assert result.attempts == 2

    def test_without_requery_callback_returns_null(self):
        assert ResampleRemapper(k=2).remap("nope", LABELS).label == NULL_LABEL

    def test_rejects_invalid_k(self):
        with pytest.raises(ConfigurationError):
            ResampleRemapper(k=0)

    def test_exact_answer_needs_no_requery(self):
        calls = []
        result = ResampleRemapper(k=3).remap(
            "number", LABELS, requery=lambda k: calls.append(k) or "number"
        )
        assert result.label == "number"
        assert calls == []


class TestSimilarityRemapper:
    def test_maps_synonyms_to_nearest_label(self):
        remapper = SimilarityRemapper()
        result = remapper.remap("a high school in new york city", LABELS)
        assert result.label == "educational organization"
        assert result.remapped

    def test_always_returns_some_label(self):
        result = SimilarityRemapper().remap("completely unrelated text", LABELS)
        assert result.label in LABELS

    def test_empty_response_maps_to_null(self):
        assert SimilarityRemapper().remap("   ", LABELS).label == NULL_LABEL

    def test_min_similarity_threshold(self):
        remapper = SimilarityRemapper(min_similarity=0.99)
        assert remapper.remap("zzzz qqqq", LABELS).label == NULL_LABEL


class TestContainsResample:
    def test_contains_handles_verbose_answer_without_requery(self):
        calls = []
        remapper = ContainsResampleRemapper(k=3)
        result = remapper.remap(
            "the answer is url", LABELS, requery=lambda k: calls.append(k) or "url"
        )
        assert result.label == "url"
        assert calls == []

    def test_falls_back_to_resampling(self):
        answers = iter(["gibberish again", "this is a state column"])
        remapper = ContainsResampleRemapper(k=3)
        result = remapper.remap("gibberish", LABELS, requery=lambda k: next(answers))
        assert result.label == "state"
        assert result.strategy == "contains+resample"


class TestFactory:
    def test_list_remappers(self):
        assert set(list_remappers()) == {
            "none", "contains", "resample", "similarity", "contains+resample",
        }

    def test_get_remapper_constructs_each(self):
        for name in list_remappers():
            assert get_remapper(name).remap is not None

    def test_get_remapper_unknown(self):
        with pytest.raises(ConfigurationError):
            get_remapper("magic")

    def test_get_remapper_passes_kwargs(self):
        remapper = get_remapper("resample", k=7)
        assert isinstance(remapper, ResampleRemapper)
        assert remapper.k == 7


class TestNormalizedLabelSetMemoization:
    """The hot-path fix: labels are normalized once per distinct label set."""

    def test_memoized_per_label_tuple(self):
        labels = ["Person_Name", "City", "postal code"]
        first = normalized_label_set(labels)
        assert first == ("person name", "city", "postal code")
        # Same labels (even via a different list object) hit the cache.
        assert normalized_label_set(list(labels)) is first

    def test_matchers_agree_with_unmemoized_normalize(self):
        labels = ["Person_Name", "addressLocality", "postal code", "IATA code"]
        for response in ("person name", "  ADDRESSLOCALITY. ", "the IATA code",
                         "postal", "no match at all"):
            expected_exact = next(
                (l for l in labels if normalize(l) == normalize(response)), None
            )
            assert exact_match(response, labels) == expected_exact

    def test_contains_longest_label_and_tie_order_preserved(self):
        # Both labels are substrings of the response; the longer normalized
        # form wins, and ties keep first-in-set order.
        assert contains_match("the postal code value", ["code", "postal code"]) == "postal code"
        assert contains_match("ab", ["AB", "a_b"]) == "AB"

    def test_empty_labels_are_skipped(self):
        assert contains_match("anything", ["", "  ", "thing"]) == "thing"
