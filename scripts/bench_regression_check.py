"""CI gate for the perf trajectory: benchmarks must not regress the baseline.

The benchmark suite writes one machine-readable ``BENCH_<shortsha>.json`` per
commit (see ``benchmarks/conftest.py``), turning the artifacts into a
trajectory.  This script closes the loop: it loads the newest artifact (or an
explicit ``--bench-file``) and replays every check declared in the committed
``benchmarks/baseline.json`` against it, failing the run — the same way the
suite gate fails on metric divergence — when a bound is violated.

Two gate classes keep the check meaningful everywhere it runs:

* ``always`` — deterministic counters (model-call ratios, coalescing
  counts).  Scale-invariant, so they gate CI's ``--quick`` runs too; a
  violation means an executor, cache, or scheduler actually broke.
* ``full-scale`` — wall-clock speedup ratios.  Only trusted on quiet
  machines at representative workload size, so they gate only when the
  artifact was produced at ``bench_columns >= 100`` outside CI (force with
  ``--timing``); elsewhere they are reported as SKIP.

Bounds are declared with an explicit ``tolerance``: a ``min`` check passes at
``min * (1 - tolerance)``, a ``max`` check at ``max * (1 + tolerance)``.

Usage::

    python scripts/bench_regression_check.py [--bench-file PATH]
                                             [--baseline PATH]
                                             [--timing | --no-timing]
                                             [--strict]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
_BENCH_DIR = _REPO / "benchmarks"

#: Wall-clock checks only gate artifacts produced at representative scale.
FULL_SCALE_COLUMNS = 100


def newest_bench_file(directory: Path) -> Path | None:
    """The most recently written ``BENCH_*.json`` artifact (excluding the
    baseline, which matches no ``BENCH_`` prefix anyway)."""
    candidates = sorted(
        directory.glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime
    )
    return candidates[-1] if candidates else None


def read_metric(record: dict, spec: str) -> float:
    """Resolve a metric spec against one benchmark record.

    ``spec`` is either a dotted path (``scheduler.n_coalesced``) or a ratio
    of two dotted paths (``model_calls_batched / model_calls_sequential``).
    """
    if "/" in spec:
        left, right = (part.strip() for part in spec.split("/", 1))
        denominator = read_metric(record, right)
        if denominator == 0:
            raise ValueError(f"denominator {right!r} is zero")
        return read_metric(record, left) / denominator
    value: object = record
    for key in spec.split("."):
        if not isinstance(value, dict) or key not in value:
            raise KeyError(f"metric path {spec!r} missing at {key!r}")
        value = value[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"metric {spec!r} is not a number: {value!r}")
    return float(value)


def run_checks(
    payload: dict,
    baseline: dict,
    *,
    timing: bool,
    strict: bool,
) -> int:
    benchmarks = payload.get("benchmarks", {})
    failures = 0
    print(f"{'status':8s} {'benchmark':34s} {'metric':44s} value      bound")
    for check in baseline["checks"]:
        name = check["benchmark"]
        spec = check["metric"]
        gate = check.get("gate", "always")
        label = f"{name:34s} {spec:44s}"

        if gate == "full-scale" and not timing:
            print(f"{'SKIP':8s} {label} (wall-clock check; untrusted timing environment)")
            continue
        record = benchmarks.get(name)
        if record is None:
            status = "FAIL" if strict else "SKIP"
            failures += strict
            print(f"{status:8s} {label} (benchmark missing from artifact)")
            continue
        try:
            value = read_metric(record, spec)
        except (KeyError, TypeError, ValueError) as exc:
            failures += 1
            print(f"{'FAIL':8s} {label} ({exc})")
            continue

        tolerance = float(check.get("tolerance", 0.0))
        bounds = []
        ok = True
        if "min" in check:
            floor = float(check["min"]) * (1.0 - tolerance)
            bounds.append(f">= {floor:g}")
            ok = ok and value >= floor
        if "max" in check:
            ceiling = float(check["max"]) * (1.0 + tolerance)
            bounds.append(f"<= {ceiling:g}")
            ok = ok and value <= ceiling
        failures += not ok
        print(
            f"{'OK' if ok else 'FAIL':8s} {label} {value:<10.4g} "
            f"{' and '.join(bounds) or '(no bound)'}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench-file",
        type=Path,
        default=None,
        help="benchmark artifact to check (default: newest benchmarks/BENCH_*.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=_BENCH_DIR / "baseline.json",
        help="committed baseline with the declared bounds",
    )
    parser.add_argument(
        "--timing",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force wall-clock checks on/off (default: on outside CI when the "
        f"artifact was produced at bench_columns >= {FULL_SCALE_COLUMNS})",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail (instead of skip) when a baselined benchmark is missing "
        "from the artifact",
    )
    args = parser.parse_args(argv)

    bench_file = args.bench_file or newest_bench_file(_BENCH_DIR)
    if bench_file is None or not bench_file.exists():
        print("no BENCH_*.json artifact found; run `pytest benchmarks/ "
              "--benchmark-only` first", file=sys.stderr)
        return 2
    payload = json.loads(bench_file.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))

    timing = args.timing
    if timing is None:
        columns = payload.get("bench_columns") or 0
        timing = not os.environ.get("CI") and columns >= FULL_SCALE_COLUMNS

    print(f"artifact: {bench_file.name} (git {payload.get('git_sha', '?')[:10]}, "
          f"bench_columns={payload.get('bench_columns')}, "
          f"timing checks {'on' if timing else 'off'})")
    failures = run_checks(payload, baseline, timing=timing, strict=args.strict)
    if failures:
        print(f"\n{failures} check(s) failed against {args.baseline.name}")
        return 1
    print(f"\nall checks passed against {args.baseline.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
