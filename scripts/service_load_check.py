#!/usr/bin/env python
"""Open-loop load check for the annotation service.

Replays SOTAB traffic against a live ``repro serve`` instance and verifies
the service-level guarantees that make annotation-as-a-service worth having:

* **correctness under concurrency** — every label returned over HTTP must
  match the sequential in-process golden path (same model, seed, sample
  size), independent of client count, arrival order, or coalescing;
* **shared warm tier** — replaying the identical workload against the
  already-warm service must issue **zero** new model queries;
* **cross-request batching** — concurrent single-column requests must
  actually coalesce into shared model batches
  (``scheduler.n_cross_request_batches > 0``), the economics the scheduler
  exists for.

Load is generated **open-loop**: request arrival times are scheduled up
front at ``--rate`` requests/second and latency is measured from the
*scheduled* arrival, not the send, so a slow server shows up as growing
latency instead of silently throttling the generator (no coordinated
omission).  The workload interleaves every column with an immediate
duplicate, exercising in-flight dedup and the LRU across sockets.

By default the script spawns ``python -m repro.cli serve --port 0`` as a
subprocess, parses the announced port, and SIGTERMs it at the end (asserting
a clean drained exit); point ``--url`` at an already-running instance to
skip that.  ``--report`` writes the full JSON report, ``--bench-append``
merges a ``service_load`` record into the newest ``benchmarks/BENCH_*.json``
artifact so ``scripts/bench_regression_check.py`` can gate service
throughput, and ``--quick`` selects the small CI shape.

Exit code 0 iff every check passes.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))

from repro.core.pipeline import ArcheType, ArcheTypeConfig  # noqa: E402
from repro.datasets.registry import load_benchmark  # noqa: E402

_ANNOUNCE = re.compile(r"listening on http://[^:]+:(\d+)")


# --------------------------------------------------------------- workload
def build_workload(
    benchmark_name: str, n_columns: int, seed: int
) -> tuple[list[dict], list[str], list[str]]:
    """The request bodies, their expected labels, and the label set.

    Each benchmark column appears twice back-to-back (the duplicate must be
    answered from the in-flight dedup set or the LRU, never the model).
    """
    benchmark = load_benchmark(benchmark_name, n_columns=n_columns, seed=seed)
    label_set = list(benchmark.label_set)
    golden = ArcheType(
        ArcheTypeConfig(model="gpt", label_set=label_set, seed=seed)
    )
    bodies: list[dict] = []
    expected: list[str] = []
    for bench_column in benchmark.columns:
        # The golden path: a fresh annotator per column — exactly what the
        # service does per request (fresh planner RNG over a shared engine).
        fresh = ArcheType(
            ArcheTypeConfig(model="gpt", label_set=label_set, seed=seed)
        )
        label = fresh.annotate_column(bench_column.column).label
        body = {
            "column": {
                "name": bench_column.column.name,
                "values": list(bench_column.column.values),
            },
            "label_set": label_set,
            "seed": seed,
        }
        for _ in range(2):  # interleaved duplicate
            bodies.append(body)
            expected.append(label)
    del golden
    return bodies, expected, label_set


# ------------------------------------------------------------ HTTP client
_LOCAL = threading.local()


def _connection(host: str, port: int) -> http.client.HTTPConnection:
    conn = getattr(_LOCAL, "conn", None)
    if conn is None:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        _LOCAL.conn = conn
    return conn


def _post_json(host: str, port: int, path: str, body: dict) -> dict:
    payload = json.dumps(body)
    for attempt in range(2):  # one retry on a dropped keep-alive socket
        conn = _connection(host, port)
        try:
            conn.request(
                "POST", path, body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                raise RuntimeError(
                    f"{path} -> HTTP {response.status}: {data[:200]!r}"
                )
            return json.loads(data)
        except (http.client.HTTPException, ConnectionError, OSError):
            _LOCAL.conn = None
            conn.close()
            if attempt == 1:
                raise
    raise AssertionError("unreachable")


def _get_json(host: str, port: int, path: str) -> dict:
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        data = response.read()
        if response.status != 200:
            raise RuntimeError(f"{path} -> HTTP {response.status}")
        return json.loads(data)
    finally:
        conn.close()


# ------------------------------------------------------------- load phase
def run_open_loop(
    host: str,
    port: int,
    bodies: list[dict],
    rate: float,
    clients: int,
) -> tuple[list[str], list[float], float]:
    """Fire the workload open-loop; returns (labels, latencies_s, wall_s)."""
    start = time.monotonic() + 0.05  # small lead so slot 0 is in the future
    labels: list[str | None] = [None] * len(bodies)
    latencies: list[float] = [0.0] * len(bodies)

    def one(index: int) -> None:
        scheduled = start + index / rate
        delay = scheduled - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        result = _post_json(host, port, "/v1/annotate", bodies[index])
        # Latency from the *scheduled* arrival: queueing delay caused by a
        # saturated server counts against it (no coordinated omission).
        latencies[index] = time.monotonic() - scheduled
        labels[index] = result["label"]

    with ThreadPoolExecutor(max_workers=clients) as pool:
        futures = [pool.submit(one, index) for index in range(len(bodies))]
        for future in futures:
            future.result()
    wall = time.monotonic() - start
    assert all(label is not None for label in labels)
    return [label for label in labels if label is not None], latencies, wall


def percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    return sorted_values[int(index)]


# ----------------------------------------------------------- server spawn
class SpawnedServer:
    """``repro serve`` as a child process; SIGTERM must exit 0 (drained)."""

    def __init__(self, args: argparse.Namespace) -> None:
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--model", args.model,
            "--model-latency", str(args.model_latency),
            "--max-batch-size", str(args.max_batch_size),
            "--max-batch-wait", str(args.max_batch_wait),
            "--workers", str(args.workers),
            "--max-pending", str(args.max_pending),
        ]
        env = dict(os.environ)
        src = str(_REPO / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        self.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=str(_REPO),
        )
        assert self.process.stdout is not None
        line = self.process.stdout.readline()
        match = _ANNOUNCE.search(line)
        if not match:
            self.process.kill()
            stderr = self.process.stderr.read() if self.process.stderr else ""
            raise RuntimeError(
                f"server did not announce a port (got {line!r}); "
                f"stderr:\n{stderr}"
            )
        self.host = "127.0.0.1"
        self.port = int(match.group(1))

    def stop(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=60)


# ------------------------------------------------------------ bench merge
def append_bench_record(record: dict) -> Path:
    """Merge a ``service_load`` record into the newest BENCH artifact."""
    bench_dir = _REPO / "benchmarks"
    candidates = sorted(
        bench_dir.glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime
    )
    if candidates:
        target = candidates[-1]
        payload = json.loads(target.read_text(encoding="utf-8"))
    else:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "HEAD"], cwd=_REPO, text=True,
                capture_output=True, check=True,
            ).stdout.strip()
        except (subprocess.CalledProcessError, OSError):
            sha = "unknown"
        short = sha[:10] if sha != "unknown" else "unknown"
        target = bench_dir / f"BENCH_{short}.json"
        payload = {
            "schema_version": 1,
            "git_sha": sha,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": ".".join(map(str, sys.version_info[:3])),
            "bench_columns": None,
            "benchmarks": {},
        }
    payload.setdefault("benchmarks", {})["service_load"] = record
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return target


# ------------------------------------------------------------------- main
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--url", default=None,
                        help="base URL of a running service "
                             "(default: spawn `repro serve --port 0`)")
    parser.add_argument("--benchmark", default="sotab-27")
    parser.add_argument("--columns", type=int, default=100,
                        help="benchmark columns (each sent twice)")
    parser.add_argument("--clients", type=int, default=32,
                        help="concurrent client threads")
    parser.add_argument("--rate", type=float, default=400.0,
                        help="open-loop arrival rate, requests/second")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--model", default="gpt")
    parser.add_argument("--model-latency", type=float, default=0.01,
                        help="simulated model latency for the spawned server "
                             "(seconds per model round trip)")
    parser.add_argument("--max-batch-size", type=int, default=16)
    parser.add_argument("--max-batch-wait", type=float, default=0.01)
    parser.add_argument("--workers", type=int, default=16)
    parser.add_argument("--max-pending", type=int, default=256)
    parser.add_argument("--quick", action="store_true",
                        help="small CI shape: 30 columns, 8 clients, "
                             "200 req/s")
    parser.add_argument("--report", type=Path, default=None,
                        help="write the full JSON report here")
    parser.add_argument("--bench-append", action="store_true",
                        help="merge a service_load record into the newest "
                             "benchmarks/BENCH_*.json")
    args = parser.parse_args(argv)
    if args.quick:
        args.columns = min(args.columns, 30)
        args.clients = min(args.clients, 8)
        args.rate = min(args.rate, 200.0)

    print(f"building workload: {args.benchmark}, {args.columns} columns "
          f"(x2 with duplicates), golden labels in-process ...", flush=True)
    bodies, expected, _label_set = build_workload(
        args.benchmark, args.columns, args.seed
    )

    server: SpawnedServer | None = None
    if args.url:
        match = re.match(r"https?://([^:/]+):(\d+)", args.url)
        if not match:
            print(f"error: cannot parse --url {args.url!r}", file=sys.stderr)
            return 2
        host, port = match.group(1), int(match.group(2))
    else:
        server = SpawnedServer(args)
        host, port = server.host, server.port
        print(f"spawned repro serve on port {port}", flush=True)

    exit_code = 1
    try:
        print(f"cold pass: {len(bodies)} requests, {args.clients} clients, "
              f"{args.rate:g} req/s open-loop ...", flush=True)
        labels, latencies, wall = run_open_loop(
            host, port, bodies, args.rate, args.clients
        )
        mismatches = [
            index for index, label in enumerate(labels)
            if label != expected[index]
        ]
        cold_stats = _get_json(host, port, "/stats")
        cold_queries = cold_stats["queries"]["n_queries"]

        print("warm pass: replaying the identical workload ...", flush=True)
        warm_labels, _warm_latencies, _warm_wall = run_open_loop(
            host, port, bodies, args.rate, args.clients
        )
        warm_mismatches = [
            index for index, label in enumerate(warm_labels)
            if label != expected[index]
        ]
        warm_stats = _get_json(host, port, "/stats")
        warm_queries = warm_stats["queries"]["n_queries"] - cold_queries

        ordered = sorted(latencies)
        p50_ms = percentile(ordered, 0.50) * 1000.0
        p99_ms = percentile(ordered, 0.99) * 1000.0
        columns_per_sec = len(bodies) / wall if wall > 0 else 0.0
        cross_batches = warm_stats["scheduler"]["n_cross_request_batches"]

        checks = {
            "labels_match_golden": not mismatches and not warm_mismatches,
            "warm_rerun_zero_queries": warm_queries == 0,
            "cross_request_batching": cross_batches > 0,
        }
        report = {
            "benchmark": args.benchmark,
            "n_requests": len(bodies),
            "n_unique_columns": args.columns,
            "clients": args.clients,
            "rate_rps": args.rate,
            "model_latency_s": args.model_latency,
            "label_mismatches": len(mismatches) + len(warm_mismatches),
            "warm_model_queries": warm_queries,
            "latency_ms": {
                "p50": round(p50_ms, 3),
                "p99": round(p99_ms, 3),
                "max": round(ordered[-1] * 1000.0, 3) if ordered else 0.0,
            },
            "columns_per_sec": round(columns_per_sec, 3),
            "wall_s": round(wall, 3),
            "scheduler": warm_stats["scheduler"],
            "admission": warm_stats["admission"],
            "checks": checks,
            "ok": all(checks.values()),
        }
    finally:
        if server is not None:
            drained_exit = server.stop()
            print(f"server drained, exit code {drained_exit}", flush=True)
            if drained_exit != 0:
                print("FAIL: server did not exit cleanly after SIGTERM",
                      file=sys.stderr)
                return 1

    print(json.dumps(
        {k: report[k] for k in
         ("label_mismatches", "warm_model_queries", "latency_ms",
          "columns_per_sec", "checks")},
        indent=2,
    ))
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        print(f"report written to {args.report}")
    if args.bench_append:
        record = {
            "n_requests": report["n_requests"],
            "clients": report["clients"],
            "rate_rps": report["rate_rps"],
            "columns_per_sec": report["columns_per_sec"],
            "p50_ms": report["latency_ms"]["p50"],
            "p99_ms": report["latency_ms"]["p99"],
            "label_mismatches": report["label_mismatches"],
            "warm_model_queries": report["warm_model_queries"],
            "scheduler": report["scheduler"],
        }
        target = append_bench_record(record)
        print(f"service_load record merged into {target}")

    for name, passed in checks.items():
        print(f"{'PASS' if passed else 'FAIL'}: {name}")
    exit_code = 0 if report["ok"] else 1
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
