"""Collect measured numbers for EXPERIMENTS.md.

Runs every experiment harness at a moderate scale and writes a plain-text
report to ``results/measured.txt``.  Used to populate the paper-vs-measured
record; re-run after changing the simulator calibration.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.eval.reporting import format_table
from repro.experiments import (
    fig4_sampling,
    fig5_context_size,
    fig6_features,
    fig7_labelset,
    perclass,
    shift,
    table1_cost,
    table2_rules,
    table3_finetuned,
    table4_zeroshot,
    table5_established,
    table6_prompts,
    table7_remap_counts,
    table8_classnames,
)

COLUMNS = int(sys.argv[1]) if len(sys.argv) > 1 else 250
OUT = Path("results/measured.txt")
OUT.parent.mkdir(exist_ok=True)


def section(title: str) -> None:
    print(f"\n{'=' * 78}\n{title}\n{'=' * 78}")


def main() -> None:
    start = time.time()
    with OUT.open("w") as handle:
        original_stdout = sys.stdout
        sys.stdout = handle  # type: ignore[assignment]
        try:
            print(f"# Measured results (evaluation columns per benchmark: {COLUMNS})")

            section("Table 1: cost of CTA benchmarking")
            print(format_table(table1_cost.run_table1(n_columns=min(COLUMNS, 200))))

            section("Table 2: gains from rule-based remapping")
            print(format_table([r.as_dict() for r in table2_rules.run_table2(n_columns=COLUMNS)]))

            section("Table 3: fine-tuned CTA on SOTAB-91")
            print(format_table([
                r.as_dict() for r in table3_finetuned.run_table3(
                    n_columns=COLUMNS, n_train_columns=4 * COLUMNS)
            ]))

            section("Table 4: zero-shot CTA")
            cells = table4_zeroshot.run_table4(n_columns=COLUMNS)
            print(format_table(table4_zeroshot.cells_as_rows(cells)))

            section("Table 5: established benchmarks")
            print(format_table([r.as_dict() for r in table5_established.run_table5(n_columns=COLUMNS)]))

            section("Table 6: prompt ablation (SOTAB-27)")
            prompt_cells = table6_prompts.run_table6(n_columns=COLUMNS)
            print(format_table(table6_prompts.cells_as_rows(prompt_cells)))
            print("best prompt per model:", table6_prompts.best_prompt_per_model(prompt_cells))

            section("Table 7: out-of-label generations")
            print(format_table([r.as_dict() for r in table7_remap_counts.run_table7(n_columns=COLUMNS)]))

            section("Table 8: classname semantics and ordering (Pubchem-20)")
            outcome = table8_classnames.run_table8(n_columns=COLUMNS)
            print(format_table(outcome.as_rows()))
            print("classes changed by >3%:", outcome.changed_classes())

            for benchmark_name in ("sotab-27", "d4-20", "pubchem-20"):
                section(f"Per-class accuracy: {benchmark_name}")
                report = perclass.run_per_class(benchmark_name, n_columns=COLUMNS)
                print(format_table(report.as_rows()))

            section("Figure 4: sampling ablation")
            print(format_table(fig4_sampling.cells_as_rows(
                fig4_sampling.run_fig4(n_columns=COLUMNS))))

            section("Figure 5: context size x remapping (UL2)")
            print(format_table(fig5_context_size.cells_as_rows(
                fig5_context_size.run_fig5(n_columns=COLUMNS))))

            section("Figure 6: feature selection")
            print(format_table(fig6_features.cells_as_rows(
                fig6_features.run_fig6(n_columns=min(COLUMNS, 150),
                                       n_train_columns=2 * COLUMNS))))

            section("Figure 7: label-set size")
            print(format_table(fig7_labelset.cells_as_rows(
                fig7_labelset.run_fig7(n_columns=COLUMNS))))

            section("Distribution shift (Section 1)")
            print(format_table([r.as_dict() for r in shift.run_shift(n_columns=COLUMNS)]))
        finally:
            sys.stdout = original_stdout
    print(f"wrote {OUT} in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
