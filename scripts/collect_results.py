"""Collect measured numbers for the paper-vs-measured record.

Thin wrapper over the suite orchestrator (this script predates it and used to
hand-run all 13 experiment harnesses).  Runs the full-scale registered suite
and leaves ``results.json`` + ``REPORT.md`` under ``results/``; re-run after
changing the simulator calibration.

Usage::

    python scripts/collect_results.py [--jobs N] [--quick]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.suite import SuiteOptions, run_suite  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--output-dir", default="results")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="optional persistent store so re-collection after a calibration "
        "change is warm where prompts did not move",
    )
    args = parser.parse_args(argv)
    result = run_suite(
        SuiteOptions(
            quick=args.quick,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            output_dir=args.output_dir,
        )
    )
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
