"""CI gate for the experiment suite: a warm replay must cost 0 model queries.

Runs the whole registered suite twice against one persistent store under
``--cache-dir``:

1. **cold** — pays every model call and fills the response store;
2. **warm** — must complete every experiment with **zero** model queries and
   produce bit-identical per-experiment metrics.

Exits non-zero if any experiment fails, the warm pass touched the model, or
any metric diverged between the passes.  ``results.json`` and ``REPORT.md``
from each pass are left under ``<cache-dir>/cold/`` and ``<cache-dir>/warm/``
so CI can upload them as artifacts.

Usage::

    python scripts/suite_repro_check.py [--cache-dir DIR] [--jobs N]
                                        [--full] [--seed N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.suite import SuiteOptions, run_suite  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default="suite-cache")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full-scale grids instead of --quick "
        "(the nightly configuration)",
    )
    args = parser.parse_args(argv)
    cache_dir = Path(args.cache_dir)

    passes = {}
    for label in ("cold", "warm"):
        print(f"=== {label} pass ===", flush=True)
        passes[label] = run_suite(
            SuiteOptions(
                quick=not args.full,
                jobs=args.jobs,
                seed=args.seed,
                cache_dir=cache_dir,
                output_dir=cache_dir / label,
            )
        )

    failures: list[str] = []
    for label, result in passes.items():
        for experiment in result.experiments:
            if experiment.status != "ok":
                failures.append(
                    f"{label}: {experiment.name} failed: "
                    f"{'; '.join(experiment.errors)}"
                )
    warm_queries = passes["warm"].totals["n_queries"]
    if warm_queries != 0:
        failures.append(
            f"warm pass issued {warm_queries} model queries; the persistent "
            "store should have answered everything"
        )
    cold_metrics = {e.name: e.metrics for e in passes["cold"].experiments}
    warm_metrics = {e.name: e.metrics for e in passes["warm"].experiments}
    if cold_metrics != warm_metrics:
        diverged = sorted(
            name
            for name in cold_metrics
            if cold_metrics[name] != warm_metrics.get(name)
        )
        failures.append(
            f"warm metrics diverged from cold for: {', '.join(diverged)}"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: warm suite replay issued 0 model queries "
        f"({passes['warm'].totals['n_store_hits']} store hits) and "
        f"reproduced all {len(cold_metrics)} experiments bit-identically"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
