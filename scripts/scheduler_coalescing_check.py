"""CI gate for the request scheduler: fan-out must coalesce, not degrade.

Replays a SOTAB-sized split through the concurrent executor at a high worker
count, with every column immediately followed by its duplicate — so each
duplicate prompt is submitted while the original is still pending and must
land on the scheduler's in-flight table (one model call, one shared future)
instead of becoming a second request.  The drained ``generate_batch`` calls
must therefore register as cross-request batches.

A scheduler that silently degrades to per-request model calls — dedup broken,
microbatcher bypassed, or the fan-out policy no longer routing through
``submit`` — scores zero on those counters and fails this check, even when
labels still come out right.  Exits non-zero on any failure, printing the
scheduler snapshot either way so CI logs show the batch-size histogram.

Usage::

    python scripts/scheduler_coalescing_check.py [--workers N] [--columns N]
                                                 [--max-batch-wait SECONDS]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.pipeline import ArcheType, ArcheTypeConfig  # noqa: E402
from repro.datasets.registry import load_benchmark  # noqa: E402


def _make_annotator(label_set, *, cache_size: int, max_batch_wait: float = 0.0):
    return ArcheType(
        ArcheTypeConfig(
            model="gpt",
            label_set=label_set,
            sample_size=5,
            sampler="firstk",
            seed=17,
            query_cache_size=cache_size,
            max_batch_wait=max_batch_wait,
        )
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--columns", type=int, default=60)
    parser.add_argument("--max-batch-wait", type=float, default=0.005)
    parser.add_argument("--benchmark", default="sotab-27")
    args = parser.parse_args(argv)

    data = load_benchmark(args.benchmark, n_columns=args.columns, seed=11)
    split = [bench_column.column for bench_column in data.columns]
    workload = [column for pair in zip(split, split) for column in pair]

    annotator = _make_annotator(
        data.label_set, cache_size=4096, max_batch_wait=args.max_batch_wait
    )
    results = annotator.annotate_columns(
        workload, executor="concurrent", workers=args.workers
    )

    reference = _make_annotator(data.label_set, cache_size=4096)
    expected = [r.label for r in reference.annotate_columns(workload)]

    snapshot = annotator.scheduler_stats
    print(f"{args.benchmark}: {len(split)} columns x2 (interleaved replay), "
          f"concurrent executor, {args.workers} workers")
    print(json.dumps(snapshot, indent=2))

    failures = []
    if [r.label for r in results] != expected:
        failures.append("fan-out labels diverged from the batched reference")
    if annotator.query_count != reference.query_count:
        failures.append(
            f"expected {reference.query_count} model calls (the deduplicated "
            f"batched budget: unique prompts plus resample retries), got "
            f"{annotator.query_count} — in-flight dedup is not coalescing"
        )
    if snapshot["n_coalesced"] == 0:
        failures.append("n_coalesced == 0 — duplicate submissions each became "
                        "their own request")
    if snapshot["n_cross_request_batches"] == 0:
        failures.append("n_cross_request_batches == 0 — the scheduler degraded "
                        "to per-request model calls")
    if not failures:
        print(f"\nOK: {snapshot['n_coalesced']} submissions coalesced onto "
              f"in-flight requests; {snapshot['n_cross_request_batches']} of "
              f"{snapshot['n_batches']} drained batches carried cross-request "
              f"work.")
        return 0
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
