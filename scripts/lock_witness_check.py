"""CI gate: cross-check the runtime lock-order witness against the graph.

The lockcheck pytest plugin (``tests/plugins/lockcheck.py``) records every
lock-acquisition order it observes while the instrumented tests run when
``LOCKCHECK_WITNESS=<path>`` is set::

    LOCKCHECK_WITNESS=reports/lock_order_witness.json \
        python -m pytest tests/core/test_scheduler.py ... tests/service

This script rebuilds the static interprocedural acquisition graph over
``src/repro`` and classifies every edge:

* a witness edge between ``src/repro`` locks that the static graph does
  not predict is a **soundness failure** (exit 1) — the analyzer missed a
  call path or the code grew an unmodeled lock order;
* a static edge never observed is fine (the graph over-approximates) and
  is listed for coverage;
* witness edges with an endpoint outside ``src/repro`` (stdlib pools,
  test-local locks) are out of scope and skipped.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.base import SourceFile
from repro.analysis.interproc import (
    CallGraph,
    build_program,
    cross_check,
    load_witness,
)


def _sources(root: Path) -> list[SourceFile]:
    return [
        SourceFile.read(str(path), path.read_text(encoding="utf-8"))
        for path in sorted(root.rglob("*.py"))
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--witness",
        default="reports/lock_order_witness.json",
        help="witness JSON written by the lockcheck plugin",
    )
    parser.add_argument(
        "--root",
        default=str(REPO_ROOT / "src" / "repro"),
        help="source tree the static graph is built over",
    )
    args = parser.parse_args(argv)

    witness_file = Path(args.witness)
    if not witness_file.exists():
        print(f"lock-witness-check: no witness at {witness_file}", file=sys.stderr)
        return 2
    witness = load_witness(witness_file)
    program = build_program(_sources(Path(args.root)))
    graph = CallGraph(program)
    result = cross_check(program, graph, witness)

    classified = (("observed", result.observed), ("unobserved", result.unobserved))
    for verdict, edges in classified:
        for edge in edges:
            print(
                f"{verdict + ':':<12}{edge.src.name} -> {edge.dst.name} "
                f"({edge.path}:{edge.line})"
            )
    for problem in result.problems:
        print(f"PROBLEM:    {problem}")
    print(result.summary())
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
