"""Regenerate EXPERIMENTS.md from the suite registry.

The per-experiment index is derived, not hand-maintained: every registered
:class:`repro.experiments.suite.ExperimentSpec` contributes one row.  Run
after adding or changing an experiment registration::

    python scripts/generate_experiments_md.py [--check]

``--check`` exits non-zero if the committed file is stale (the CI lint job
uses this).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.suite import discover, render_experiments_index  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify EXPERIMENTS.md is up to date instead of writing it",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "EXPERIMENTS.md"))
    args = parser.parse_args(argv)

    rendered = render_experiments_index(discover())
    output = Path(args.output)
    if args.check:
        current = output.read_text(encoding="utf-8") if output.exists() else ""
        if current != rendered:
            print(
                f"{output} is stale; regenerate with "
                "`python scripts/generate_experiments_md.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{output} is up to date")
        return 0
    output.write_text(rendered, encoding="utf-8")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
