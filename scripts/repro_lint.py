"""CI entry point for repro-lint, the project-specific static analysis.

Thin wrapper over :mod:`repro.analysis` so the gate works from a bare
checkout without installing the package.  Flags are identical to
``repro lint`` / ``python -m repro.analysis``; the CI job runs::

    python scripts/repro_lint.py --strict --json reports/repro_lint.json

which exits 1 when any unsuppressed finding (or unparseable file) remains
and uploads the JSON report as a build artifact.  The rule catalog lives in
``src/repro/analysis/RULES.md``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis import main

if __name__ == "__main__":
    raise SystemExit(main())
