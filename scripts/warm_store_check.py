"""CI gate for the persistence layer: warm reruns must issue 0 model queries.

Runs the same quick evaluation twice against one persistent store under
``--cache-dir``.  The first (cold) run pays every model call and fills the
store; the second (warm) run must reproduce the same predictions while
issuing **zero** model queries — the whole point of the on-disk
``(prompt, params) → response`` tier.  Exits non-zero if the warm run touched
the model or diverged, printing both summary rows either way.

The run manifests written under ``<cache-dir>/runs/<run_id>/manifest.jsonl``
are left in place so CI can upload them as artifacts.

Usage::

    python scripts/warm_store_check.py [--cache-dir DIR] [--columns N]
                                       [--store {sqlite,jsonl}]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.baselines.llm_baselines import get_zero_shot_method  # noqa: E402
from repro.datasets.registry import load_benchmark  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402
from repro.eval.runner import ExperimentRunner  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default="warm-store-cache")
    parser.add_argument("--columns", type=int, default=60)
    parser.add_argument("--store", default="sqlite", choices=["sqlite", "jsonl"])
    parser.add_argument("--benchmark", default="sotab-27")
    parser.add_argument("--model", default="t5")
    args = parser.parse_args(argv)

    benchmark = load_benchmark(args.benchmark, n_columns=args.columns, seed=0)

    def run():
        # Run ids are generated (not fixed names) so repeated invocations
        # against the same cache directory never collide with the manifests
        # earlier runs deliberately leave behind.
        annotator = get_zero_shot_method(
            "archetype", benchmark, model=args.model, seed=0
        )
        runner = ExperimentRunner(cache_dir=args.cache_dir, store=args.store)
        return runner.evaluate(annotator, benchmark, f"archetype-{args.model}")

    cold = run()
    warm = run()

    print(format_table([cold.summary_row(), warm.summary_row()],
                       title=f"{args.benchmark}: cold vs warm store rerun"))

    failures = []
    if cold.n_queries == 0:
        failures.append(
            "first run issued zero queries — the store under "
            f"{args.cache_dir!r} is already warm, so this check is vacuous; "
            "point --cache-dir at a fresh directory"
        )
    if warm.n_queries != 0:
        failures.append(
            f"warm run issued {warm.n_queries} model queries (expected 0)"
        )
    if warm.predictions != cold.predictions:
        failures.append("warm predictions diverged from the cold run")
    if not failures:
        print(f"\nOK: warm rerun served {warm.n_store_hits} prompts from the "
              f"{args.store} store with 0 model queries "
              f"(cold run issued {cold.n_queries}).")
        return 0
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
